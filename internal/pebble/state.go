package pebble

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

// State tracks a pebble-game execution: which processors contain which
// pebbles, who generated what, and when each generator first obtained each
// pebble (for the frontier analysis of Definition 3.16).
type State struct {
	guest *graph.Graph
	host  *graph.Graph
	T     int

	// contains[q] is the set of pebbles held by host processor q.
	contains []map[Type]bool
	// holders[ty] is the sorted-on-demand set of processors holding ty.
	holders map[Type][]int
	// generators[ty] is the set of processors that executed Generate(ty).
	generators map[Type][]int
	// genStep[ty][q] is the host step (1-based) at which q generated ty.
	genStep map[Type]map[int]int
	// firstHeld[q][ty] is the host step at which q first obtained ty
	// (0 for initial pebbles).
	firstHeld []map[Type]int
	// step counts applied host steps.
	step int
}

// NewState initializes the start configuration: every host processor holds
// all initial pebbles (P_i, 0).
func NewState(guest, host *graph.Graph, T int) *State {
	st := &State{
		guest:      guest,
		host:       host,
		T:          T,
		contains:   make([]map[Type]bool, host.N()),
		holders:    make(map[Type][]int),
		generators: make(map[Type][]int),
		genStep:    make(map[Type]map[int]int),
		firstHeld:  make([]map[Type]int, host.N()),
	}
	for q := 0; q < host.N(); q++ {
		st.contains[q] = make(map[Type]bool)
		st.firstHeld[q] = make(map[Type]int)
	}
	for i := 0; i < guest.N(); i++ {
		ty := Type{P: i, T: 0}
		for q := 0; q < host.N(); q++ {
			st.contains[q][ty] = true
			st.firstHeld[q][ty] = 0
		}
		all := make([]int, host.N())
		for q := range all {
			all[q] = q
		}
		st.holders[ty] = all
	}
	return st
}

// HostStep returns the number of host steps applied so far.
func (st *State) HostStep() int { return st.step }

// Contains reports whether processor q holds pebble ty.
func (st *State) Contains(q int, ty Type) bool { return st.contains[q][ty] }

// ApplyStep validates and applies one host step's operations.
func (st *State) ApplyStep(ops []Op) error {
	st.step++
	busy := make(map[int]bool)
	// Pair sends and receives: a receive must match a send of the same
	// pebble along the reverse edge in this step.
	type edgeKey struct {
		from, to int
		pb       Type
	}
	sends := make(map[edgeKey]int)
	var receives []Op
	var gains []struct {
		q  int
		pb Type
	}

	for _, op := range ops {
		if op.Proc < 0 || op.Proc >= st.host.N() {
			return fmt.Errorf("processor %d out of range", op.Proc)
		}
		if busy[op.Proc] {
			return fmt.Errorf("processor %d performs two operations", op.Proc)
		}
		busy[op.Proc] = true
		switch op.Kind {
		case Generate:
			if err := st.checkGenerate(op.Proc, op.Pebble); err != nil {
				return err
			}
			gains = append(gains, struct {
				q  int
				pb Type
			}{op.Proc, op.Pebble})
			st.generators[op.Pebble] = appendUnique(st.generators[op.Pebble], op.Proc)
			if st.genStep[op.Pebble] == nil {
				st.genStep[op.Pebble] = make(map[int]int)
			}
			if _, dup := st.genStep[op.Pebble][op.Proc]; !dup {
				st.genStep[op.Pebble][op.Proc] = st.step
			}
		case Send:
			if !st.host.HasEdge(op.Proc, op.Peer) {
				return fmt.Errorf("send %v along non-edge %d→%d", op.Pebble, op.Proc, op.Peer)
			}
			if !st.contains[op.Proc][op.Pebble] {
				return fmt.Errorf("processor %d sends pebble %v it does not hold", op.Proc, op.Pebble)
			}
			sends[edgeKey{op.Proc, op.Peer, op.Pebble}]++
		case Receive:
			receives = append(receives, op)
		default:
			return fmt.Errorf("unknown op kind %v", op.Kind)
		}
	}
	for _, op := range receives {
		k := edgeKey{op.Peer, op.Proc, op.Pebble}
		if sends[k] == 0 {
			return fmt.Errorf("processor %d receives %v from %d without a matching send", op.Proc, op.Pebble, op.Peer)
		}
		sends[k]--
		gains = append(gains, struct {
			q  int
			pb Type
		}{op.Proc, op.Pebble})
	}
	for k, c := range sends {
		if c > 0 {
			return fmt.Errorf("send of %v from %d to %d has no matching receive", k.pb, k.from, k.to)
		}
	}
	// Apply gains after all checks (synchronous step semantics).
	for _, g := range gains {
		if !st.contains[g.q][g.pb] {
			st.contains[g.q][g.pb] = true
			st.holders[g.pb] = append(st.holders[g.pb], g.q)
			st.firstHeld[g.q][g.pb] = st.step
		}
	}
	return nil
}

func (st *State) checkGenerate(q int, ty Type) error {
	if ty.T < 1 || ty.T > st.T {
		return fmt.Errorf("generate %v outside guest horizon [1,%d]", ty, st.T)
	}
	if ty.P < 0 || ty.P >= st.guest.N() {
		return fmt.Errorf("generate %v: no such guest processor", ty)
	}
	need := Type{P: ty.P, T: ty.T - 1}
	if !st.contains[q][need] {
		return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, need)
	}
	for _, j := range st.guest.Neighbors(ty.P) {
		need := Type{P: j, T: ty.T - 1}
		if !st.contains[q][need] {
			return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, need)
		}
	}
	return nil
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Representatives returns Q_S(i, t): the processors holding pebble (P_i, t)
// at the current point of the protocol, sorted.
func (st *State) Representatives(i, t int) []int {
	h := append([]int(nil), st.holders[Type{P: i, T: t}]...)
	sort.Ints(h)
	return h
}

// Generators returns Q'_S(i, t): the processors that generated (P_i, t+1)
// (necessarily members of Q_S(i, t)), sorted.
func (st *State) Generators(i, t int) []int {
	g := append([]int(nil), st.generators[Type{P: i, T: t + 1}]...)
	sort.Ints(g)
	return g
}

// Weight returns q_{i,t} = |Q_S(i,t)| (Definition 3.11).
func (st *State) Weight(i, t int) int { return len(st.holders[Type{P: i, T: t}]) }

// TotalWeight returns Σ_i q_{i,t} for one guest time step.
func (st *State) TotalWeight(t int) int {
	sum := 0
	for i := 0; i < st.guest.N(); i++ {
		sum += st.Weight(i, t)
	}
	return sum
}

// PebbleCount returns the total number of pebble placements, which is
// bounded by the operation count T'·m in the proof of Lemma 3.12.
func (st *State) PebbleCount() int {
	sum := 0
	for _, h := range st.holders {
		sum += len(h)
	}
	return sum
}

// GuestsOnProcessor returns 𝒫(j, t) = {i : j ∈ Q_S(i, t)} — the guest
// processors whose time-t pebble processor j holds (used for the D_i sets
// and the heavy-processor argument of Lemma 3.15).
func (st *State) GuestsOnProcessor(j, t int) []int {
	var out []int
	for i := 0; i < st.guest.N(); i++ {
		if st.contains[j][Type{P: i, T: t}] {
			out = append(out, i)
		}
	}
	return out
}

// FrontierSize returns e_t(τ) of Definition 3.16: the number of guest
// processors i for which a generating pebble of type (P_i, t) exists after τ
// host steps — that is, some processor that (at some point of the protocol)
// generates (P_i, t+1) already holds (P_i, t) by step τ.
func (st *State) FrontierSize(t, τ int) int {
	count := 0
	for i := 0; i < st.guest.N(); i++ {
		ty := Type{P: i, T: t}
		for _, q := range st.generators[Type{P: i, T: t + 1}] {
			if first, ok := st.firstHeld[q][ty]; ok && first <= τ {
				count++
				break
			}
		}
	}
	return count
}

// FrontierThresholdStep returns τ_j of Lemma 3.15: the earliest host step at
// which e_t(τ) ≥ target, or -1 if never reached.
func (st *State) FrontierThresholdStep(t, target, maxStep int) int {
	for τ := 0; τ <= maxStep; τ++ {
		if st.FrontierSize(t, τ) >= target {
			return τ
		}
	}
	return -1
}
