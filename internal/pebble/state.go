package pebble

import (
	"fmt"
	"math/bits"
	"sort"

	"universalnet/internal/graph"
)

// State tracks a pebble-game execution: which processors contain which
// pebbles, who generated what, and when each generator first obtained each
// pebble (for the frontier analysis of Definition 3.16).
//
// Storage is dense and ID-indexed: over the known horizon [0, T], pebble
// (P_i, t) maps to the integer id = t·n + i, so possession is one bitset per
// host processor and the per-pebble tables (holders, generators, first-held
// steps) are flat arrays indexed by id. ApplyStep keeps per-State scratch —
// a step-stamped busy array and reusable send/receive/gain buffers — so a
// warm replay performs no allocations beyond the pebble placements
// themselves. See DESIGN.md §2 ("Pebble state representation").
type State struct {
	guest *graph.Graph
	host  *graph.Graph
	T     int

	n, m   int
	numIDs int // (T+1)·n pebble ids; id(i, t) = t·n + i
	words  int // bitset words per host processor

	// contains packs m bitsets of numIDs bits: processor q holds pebble id
	// iff bit id of contains[q·words : (q+1)·words] is set.
	contains []uint64

	// holders is a per-id singly linked list threaded through holderEntries
	// (gain order), with holderCount the list length. Initial pebbles (t = 0)
	// are held by every processor from the start and can never be gained
	// again; they carry count = m and no list entries.
	holderHead    []int32
	holderCount   []int32
	holderEntries []holderEntry

	// generators is the same linked-list layout for Q'_S: one entry per
	// (pebble, processor) pair that executed Generate, recording the host
	// step of the first generation (duplicates keep the first).
	genHead    []int32
	genCount   []int32
	genEntries []genEntry

	// firstHeld[q·numIDs + id] is the host step at which q first obtained
	// the pebble; meaningful only while the contains bit is set (0 for
	// initial pebbles).
	firstHeld []int32

	// step counts applied host steps.
	step int

	// Scratch reused across ApplyStep calls, so the warm path allocates
	// nothing: busyStamp[q] == int32(step) marks q as having acted this
	// step; sendRecs/recvOps/gains are truncated and refilled per step.
	busyStamp []int32
	sendRecs  []sendRec
	recvOps   []Op
	gains     []gainRec

	// frontierVals[t] caches the sorted jump points of e_t(·) — the minima
	// over generators of firstHeld — so FrontierSize is a binary search and
	// FrontierThresholdStep a single lookup. frontierStep[t] records the
	// host step the cache was built at; any ApplyStep invalidates it.
	frontierVals [][]int32
	frontierStep []int
}

type holderEntry struct{ proc, next int32 }

type genEntry struct{ proc, step, next int32 }

type sendRec struct {
	from, to int32
	id       int32
	count    int32
}

type gainRec struct{ q, id int32 }

// NewState initializes the start configuration: every host processor holds
// all initial pebbles (P_i, 0).
func NewState(guest, host *graph.Graph, T int) *State {
	n, m := guest.N(), host.N()
	numIDs := (T + 1) * n
	words := (numIDs + 63) / 64
	st := &State{
		guest:       guest,
		host:        host,
		T:           T,
		n:           n,
		m:           m,
		numIDs:      numIDs,
		words:       words,
		contains:    make([]uint64, m*words),
		holderHead:  make([]int32, numIDs),
		holderCount: make([]int32, numIDs),
		genHead:     make([]int32, numIDs),
		genCount:    make([]int32, numIDs),
		firstHeld:   make([]int32, m*numIDs),
		busyStamp:   make([]int32, m),
	}
	for id := 0; id < numIDs; id++ {
		st.holderHead[id] = -1
		st.genHead[id] = -1
	}
	// The t = 0 row: ids 0..n−1 set on every processor, count m each.
	for q := 0; q < m; q++ {
		row := st.contains[q*words : (q+1)*words]
		for w := 0; w < n/64; w++ {
			row[w] = ^uint64(0)
		}
		if r := uint(n) & 63; r != 0 {
			row[n/64] |= 1<<r - 1
		}
	}
	for i := 0; i < n; i++ {
		st.holderCount[i] = int32(m)
	}
	return st
}

// id maps an in-horizon pebble type to its dense id.
func (st *State) id(ty Type) int { return ty.T*st.n + ty.P }

// idOf maps ty to its dense id, reporting false when ty lies outside the
// horizon (no such pebble can ever exist).
func (st *State) idOf(ty Type) (int, bool) {
	if ty.P < 0 || ty.P >= st.n || ty.T < 0 || ty.T > st.T {
		return 0, false
	}
	return ty.T*st.n + ty.P, true
}

func (st *State) bit(q, id int) bool {
	return st.contains[q*st.words+id>>6]&(1<<(uint(id)&63)) != 0
}

func (st *State) setBit(q, id int) {
	st.contains[q*st.words+id>>6] |= 1 << (uint(id) & 63)
}

// HostStep returns the number of host steps applied so far.
func (st *State) HostStep() int { return st.step }

// Contains reports whether processor q holds pebble ty.
func (st *State) Contains(q int, ty Type) bool {
	id, ok := st.idOf(ty)
	return ok && st.bit(q, id)
}

// hasGenerator reports whether some processor generated ty.
func (st *State) hasGenerator(ty Type) bool {
	id, ok := st.idOf(ty)
	return ok && st.genCount[id] > 0
}

// addGenerator records that q executed Generate for id at the current step;
// a duplicate generation by the same processor keeps the first step.
func (st *State) addGenerator(id, q int) {
	for e := st.genHead[id]; e >= 0; e = st.genEntries[e].next {
		if int(st.genEntries[e].proc) == q {
			return
		}
	}
	st.genEntries = append(st.genEntries, genEntry{
		proc: int32(q), step: int32(st.step), next: st.genHead[id],
	})
	st.genHead[id] = int32(len(st.genEntries) - 1)
	st.genCount[id]++
}

// ApplyStep validates and applies one host step's operations.
func (st *State) ApplyStep(ops []Op) error {
	st.step++
	stamp := int32(st.step)
	st.sendRecs = st.sendRecs[:0]
	st.recvOps = st.recvOps[:0]
	st.gains = st.gains[:0]

	for _, op := range ops {
		if op.Proc < 0 || op.Proc >= st.m {
			return fmt.Errorf("processor %d out of range", op.Proc)
		}
		if st.busyStamp[op.Proc] == stamp {
			return fmt.Errorf("processor %d performs two operations", op.Proc)
		}
		st.busyStamp[op.Proc] = stamp
		switch op.Kind {
		case Generate:
			if err := st.checkGenerate(op.Proc, op.Pebble); err != nil {
				return err
			}
			id := st.id(op.Pebble)
			st.gains = append(st.gains, gainRec{q: int32(op.Proc), id: int32(id)})
			st.addGenerator(id, op.Proc)
		case Send:
			if !st.host.HasEdge(op.Proc, op.Peer) {
				return fmt.Errorf("send %v along non-edge %d→%d", op.Pebble, op.Proc, op.Peer)
			}
			id, ok := st.idOf(op.Pebble)
			if !ok || !st.bit(op.Proc, id) {
				return fmt.Errorf("processor %d sends pebble %v it does not hold", op.Proc, op.Pebble)
			}
			st.sendRecs = append(st.sendRecs, sendRec{
				from: int32(op.Proc), to: int32(op.Peer), id: int32(id), count: 1,
			})
		case Receive:
			st.recvOps = append(st.recvOps, op)
		default:
			return fmt.Errorf("unknown op kind %v", op.Kind)
		}
	}
	// Pair sends and receives: a receive must match a send of the same
	// pebble along the reverse edge in this step. Steps are small (at most
	// one op per processor), so a linear scan beats any map.
	for _, op := range st.recvOps {
		matched := false
		if id, ok := st.idOf(op.Pebble); ok {
			for ri := range st.sendRecs {
				r := &st.sendRecs[ri]
				if r.count > 0 && int(r.from) == op.Peer && int(r.to) == op.Proc && int(r.id) == id {
					r.count--
					matched = true
					break
				}
			}
			if matched {
				st.gains = append(st.gains, gainRec{q: int32(op.Proc), id: int32(id)})
			}
		}
		if !matched {
			return fmt.Errorf("processor %d receives %v from %d without a matching send", op.Proc, op.Pebble, op.Peer)
		}
	}
	for _, r := range st.sendRecs {
		if r.count > 0 {
			pb := Type{P: int(r.id) % st.n, T: int(r.id) / st.n}
			return fmt.Errorf("send of %v from %d to %d has no matching receive", pb, r.from, r.to)
		}
	}
	// Apply gains after all checks (synchronous step semantics).
	for _, g := range st.gains {
		q, id := int(g.q), int(g.id)
		if !st.bit(q, id) {
			st.setBit(q, id)
			st.holderEntries = append(st.holderEntries, holderEntry{proc: g.q, next: st.holderHead[id]})
			st.holderHead[id] = int32(len(st.holderEntries) - 1)
			st.holderCount[id]++
			st.firstHeld[q*st.numIDs+id] = int32(st.step)
		}
	}
	return nil
}

func (st *State) checkGenerate(q int, ty Type) error {
	if ty.T < 1 || ty.T > st.T {
		return fmt.Errorf("generate %v outside guest horizon [1,%d]", ty, st.T)
	}
	if ty.P < 0 || ty.P >= st.n {
		return fmt.Errorf("generate %v: no such guest processor", ty)
	}
	base := (ty.T - 1) * st.n
	if !st.bit(q, base+ty.P) {
		return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, Type{P: ty.P, T: ty.T - 1})
	}
	for _, j := range st.guest.Neighbors(ty.P) {
		if !st.bit(q, base+j) {
			return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, Type{P: j, T: ty.T - 1})
		}
	}
	return nil
}

// Representatives returns Q_S(i, t): the processors holding pebble (P_i, t)
// at the current point of the protocol, sorted.
func (st *State) Representatives(i, t int) []int {
	id, ok := st.idOf(Type{P: i, T: t})
	if !ok || st.holderCount[id] == 0 {
		return nil
	}
	if t == 0 {
		all := make([]int, st.m)
		for q := range all {
			all[q] = q
		}
		return all
	}
	out := make([]int, 0, st.holderCount[id])
	for e := st.holderHead[id]; e >= 0; e = st.holderEntries[e].next {
		out = append(out, int(st.holderEntries[e].proc))
	}
	sort.Ints(out)
	return out
}

// Generators returns Q'_S(i, t): the processors that generated (P_i, t+1)
// (necessarily members of Q_S(i, t)), sorted.
func (st *State) Generators(i, t int) []int {
	id, ok := st.idOf(Type{P: i, T: t + 1})
	if !ok || st.genCount[id] == 0 {
		return nil
	}
	out := make([]int, 0, st.genCount[id])
	for e := st.genHead[id]; e >= 0; e = st.genEntries[e].next {
		out = append(out, int(st.genEntries[e].proc))
	}
	sort.Ints(out)
	return out
}

// Weight returns q_{i,t} = |Q_S(i,t)| (Definition 3.11).
func (st *State) Weight(i, t int) int {
	id, ok := st.idOf(Type{P: i, T: t})
	if !ok {
		return 0
	}
	return int(st.holderCount[id])
}

// TotalWeight returns Σ_i q_{i,t} for one guest time step.
func (st *State) TotalWeight(t int) int {
	if t < 0 || t > st.T {
		return 0
	}
	sum := 0
	for id := t * st.n; id < (t+1)*st.n; id++ {
		sum += int(st.holderCount[id])
	}
	return sum
}

// PebbleCount returns the total number of pebble placements, which is
// bounded by the operation count T'·m in the proof of Lemma 3.12.
func (st *State) PebbleCount() int {
	sum := 0
	for _, c := range st.holderCount {
		sum += int(c)
	}
	return sum
}

// GuestsOnProcessor returns 𝒫(j, t) = {i : j ∈ Q_S(i, t)} — the guest
// processors whose time-t pebble processor j holds (used for the D_i sets
// and the heavy-processor argument of Lemma 3.15).
func (st *State) GuestsOnProcessor(j, t int) []int {
	if t < 0 || t > st.T {
		return nil
	}
	var out []int
	base := t * st.n
	for i := 0; i < st.n; i++ {
		if st.bit(j, base+i) {
			out = append(out, i)
		}
	}
	return out
}

// guestsOnCount is |GuestsOnProcessor(j, t)| without the allocation: a
// popcount over the time-t span of j's bitset row.
func (st *State) guestsOnCount(j, t int) int {
	if t < 0 || t > st.T {
		return 0
	}
	lo, hi := t*st.n, (t+1)*st.n
	row := st.contains[j*st.words : (j+1)*st.words]
	count := 0
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		word := row[w]
		if w == lo>>6 {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == (hi-1)>>6 {
			if r := uint(hi) & 63; r != 0 {
				word &= 1<<r - 1
			}
		}
		count += bits.OnesCount64(word)
	}
	return count
}

// frontierFor returns the sorted jump points of e_t(·): for each guest i
// with a generating pebble of type (P_i, t), the earliest host step at which
// some eventual generator of (P_i, t+1) first held (P_i, t). Rebuilt lazily
// after each applied host step, then served from cache.
func (st *State) frontierFor(t int) []int32 {
	if st.frontierVals == nil {
		st.frontierVals = make([][]int32, st.T+1)
		st.frontierStep = make([]int, st.T+1)
		for i := range st.frontierStep {
			st.frontierStep[i] = -1
		}
	}
	if st.frontierStep[t] == st.step {
		return st.frontierVals[t]
	}
	vals := st.frontierVals[t][:0]
	base := t * st.n
	for i := 0; i < st.n; i++ {
		best := int32(-1)
		for e := st.genHead[base+st.n+i]; e >= 0; e = st.genEntries[e].next {
			q := int(st.genEntries[e].proc)
			if st.bit(q, base+i) {
				if f := st.firstHeld[q*st.numIDs+base+i]; best < 0 || f < best {
					best = f
				}
			}
		}
		if best >= 0 {
			vals = append(vals, best)
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	st.frontierVals[t] = vals
	st.frontierStep[t] = st.step
	return vals
}

// FrontierSize returns e_t(τ) of Definition 3.16: the number of guest
// processors i for which a generating pebble of type (P_i, t) exists after τ
// host steps — that is, some processor that (at some point of the protocol)
// generates (P_i, t+1) already holds (P_i, t) by step τ.
func (st *State) FrontierSize(t, τ int) int {
	if t < 0 || t+1 > st.T {
		return 0
	}
	vals := st.frontierFor(t)
	return sort.Search(len(vals), func(k int) bool { return int(vals[k]) > τ })
}

// FrontierThresholdStep returns τ_j of Lemma 3.15: the earliest host step at
// which e_t(τ) ≥ target, or -1 if never reached.
func (st *State) FrontierThresholdStep(t, target, maxStep int) int {
	if maxStep < 0 {
		return -1
	}
	if target <= 0 {
		return 0
	}
	if t < 0 || t+1 > st.T {
		return -1
	}
	vals := st.frontierFor(t)
	if len(vals) < target {
		return -1
	}
	// e_t only grows at the cached jump points, so the earliest step with
	// e_t(τ) ≥ target is the target-th smallest first-held minimum.
	if τ := int(vals[target-1]); τ <= maxStep {
		return τ
	}
	return -1
}
