package pebble

import (
	"fmt"
	"math/rand"

	"universalnet/internal/graph"
)

// RandomProtocol generates a random legal simulation protocol by greedy
// random play: at every host step each processor picks, uniformly among its
// currently legal moves, a generate or a send (paired with a free
// neighbor's receive), with a bias toward generations that make progress.
// The result is a valid protocol by construction — an independent source of
// protocols for testing the analysis machinery beyond the structured
// embedding builder. Generation terminates when all final pebbles exist.
func RandomProtocol(guest, host *graph.Graph, T int, rng *rand.Rand, maxHostSteps int) (*Protocol, error) {
	if T < 1 {
		return nil, fmt.Errorf("pebble: need T ≥ 1")
	}
	if !host.IsConnected() {
		return nil, fmt.Errorf("pebble: host must be connected")
	}
	n, m := guest.N(), host.N()
	if maxHostSteps == 0 {
		maxHostSteps = 64 * T * (n + m) * (host.Diameter() + 1)
	}
	pr := &Protocol{Guest: guest, Host: host, T: T}
	st := NewState(guest, host, T)

	// canGenerate reports a legal, not-yet-done generation of (P_i, t) at q.
	canGenerate := func(q, i, t int) bool {
		if t < 1 || t > T {
			return false
		}
		if st.Contains(q, Type{P: i, T: t}) {
			return false
		}
		if !st.Contains(q, Type{P: i, T: t - 1}) {
			return false
		}
		for _, j := range guest.Neighbors(i) {
			if !st.Contains(q, Type{P: j, T: t - 1}) {
				return false
			}
		}
		return true
	}
	finalDone := func() bool {
		for i := 0; i < n; i++ {
			if !st.hasGenerator(Type{P: i, T: T}) {
				return false
			}
		}
		return true
	}

	for !finalDone() {
		if st.HostStep() >= maxHostSteps {
			return nil, fmt.Errorf("pebble: random protocol exceeded %d host steps", maxHostSteps)
		}
		busy := make([]bool, m)
		var ops []Op
		order := rng.Perm(m)
		for _, q := range order {
			if busy[q] {
				continue
			}
			// Prefer a generation (progress); pick a random legal one.
			var gens []Type
			for i := 0; i < n; i++ {
				// Try the lowest missing time level for this guest at q
				// plus one random higher level for variety.
				for t := 1; t <= T; t++ {
					if canGenerate(q, i, t) {
						gens = append(gens, Type{P: i, T: t})
						break
					}
				}
			}
			if len(gens) > 0 && rng.Intn(4) != 0 {
				pick := gens[rng.Intn(len(gens))]
				ops = append(ops, Op{Kind: Generate, Proc: q, Pebble: pick})
				busy[q] = true
				continue
			}
			// Otherwise, send a random useful pebble to a random free
			// neighbor that lacks it.
			var nbrs []int
			for _, w := range host.Neighbors(q) {
				if !busy[w] {
					nbrs = append(nbrs, w)
				}
			}
			if len(nbrs) == 0 {
				continue
			}
			w := nbrs[rng.Intn(len(nbrs))]
			pb, ok := pickUsefulPebble(st, guest, q, w, T, rng)
			if !ok {
				continue
			}
			ops = append(ops, Op{Kind: Send, Proc: q, Pebble: pb, Peer: w})
			ops = append(ops, Op{Kind: Receive, Proc: w, Pebble: pb, Peer: q})
			busy[q] = true
			busy[w] = true
		}
		if len(ops) == 0 {
			return nil, fmt.Errorf("pebble: random protocol stalled at host step %d", st.HostStep())
		}
		if err := st.ApplyStep(ops); err != nil {
			return nil, fmt.Errorf("pebble: generated illegal step (bug): %w", err)
		}
		pr.Steps = append(pr.Steps, ops)
	}
	return pr, nil
}

// pickUsefulPebble chooses a pebble held by q and missing at w, preferring
// recent time levels (they unblock generations).
func pickUsefulPebble(st *State, guest *graph.Graph, q, w, T int, rng *rand.Rand) (Type, bool) {
	n := guest.N()
	// Scan from high time levels down; collect a few candidates.
	var cands []Type
	for t := T; t >= 0 && len(cands) < 8; t-- {
		start := rng.Intn(n)
		for off := 0; off < n; off++ {
			i := (start + off) % n
			ty := Type{P: i, T: t}
			if st.Contains(q, ty) && !st.Contains(w, ty) {
				cands = append(cands, ty)
				if len(cands) >= 8 {
					break
				}
			}
		}
	}
	if len(cands) == 0 {
		return Type{}, false
	}
	return cands[rng.Intn(len(cands))], true
}
