package pebble

import (
	"fmt"
	"testing"

	"universalnet/internal/core"
	"universalnet/internal/topology"
)

// Exhaustive verification of Lemma 3.3 on a micro instance: enumerate EVERY
// labeled 4-regular guest on 6 vertices (there are 15 — the complements of
// the perfect matchings of K6), build the canonical protocol for each on a
// fixed host, extract the fragment at a fixed critical time with a fixed
// picker, and check that the number of distinct guests sharing any one
// fragment never exceeds the lemma's bound Π_i C(|D_i|, c/2). This is the
// multiplicity X measured exactly, not sampled.
func TestLemma33ExhaustiveMicro(t *testing.T) {
	const (
		n  = 6
		c  = 4
		T  = 3
		t0 = 1
	)
	guests, err := topology.EnumerateRegularGraphs(n, c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(guests) != 15 {
		t.Fatalf("enumerated %d guests, want 15", len(guests))
	}
	// Load-1 host: each guest processor on its own host, so B_i reflects
	// which neighbors exist and fragments distinguish guests.
	host, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	type fragKey string
	byFragment := make(map[fragKey][]int)
	fragBound := make(map[fragKey]float64)
	for gi, guest := range guests {
		pr, err := BuildEmbeddingProtocol(guest, host, nil, T)
		if err != nil {
			t.Fatalf("guest %d: %v", gi, err)
		}
		st, err := pr.Validate()
		if err != nil {
			t.Fatalf("guest %d: %v", gi, err)
		}
		frag, err := st.ExtractFragment(t0, PickFirst)
		if err != nil {
			t.Fatalf("guest %d: %v", gi, err)
		}
		if err := frag.Validate(); err != nil {
			t.Fatalf("guest %d: %v", gi, err)
		}
		// Lemma 3.3's edge-inclusion core, exhaustively.
		for i := 0; i < n; i++ {
			dset := make(map[int]bool)
			for _, x := range frag.D[i] {
				dset[x] = true
			}
			for _, j := range guest.Neighbors(i) {
				if !dset[j] {
					t.Fatalf("guest %d: neighbor %d of P%d outside D_%d", gi, j, i, i)
				}
			}
		}
		// Canonical encoding of the fragment (B, B', D determined by B, B').
		key := fragKey(fmt.Sprintf("%v|%v", frag.B, frag.BP))
		byFragment[key] = append(byFragment[key], gi)
		dSizes := make([]int, n)
		for i := range frag.D {
			dSizes[i] = len(frag.D[i])
		}
		fragBound[key] = core.Log2MultiplicityExact(dSizes, c)
	}
	// The measured multiplicity of every fragment respects the bound.
	for key, members := range byFragment {
		bound := fragBound[key]
		measured := float64(len(members))
		if measured > 1 && core.Log2Factorial(int(measured)) > 0 {
			// log2(measured) ≤ bound must hold; measured == 1 is trivial.
			log2m := 0.0
			for x := measured; x > 1; x /= 2 {
				log2m++
			}
			if log2m > bound {
				t.Errorf("fragment shared by %d guests exceeds Lemma 3.3 bound 2^%.1f", len(members), bound)
			}
		}
	}
	// Sanity: the protocols distinguish most guests (the fragments are
	// informative, not all identical).
	if len(byFragment) < 2 {
		t.Errorf("all %d guests collapsed onto %d fragment(s)", len(guests), len(byFragment))
	}
}

// The same exhaustive sweep at c = 2 (disjoint cycle covers on 6 vertices):
// all 70 guests simulate and carry computations.
func TestAllTwoRegularGuestsCarry(t *testing.T) {
	guests, err := topology.EnumerateRegularGraphs(6, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(guests) != 70 {
		t.Fatalf("enumerated %d, want 70", len(guests))
	}
	host, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	for gi, guest := range guests {
		pr, err := BuildEmbeddingProtocol(guest, host, nil, 2)
		if err != nil {
			t.Fatalf("guest %d: %v", gi, err)
		}
		if _, err := pr.Validate(); err != nil {
			t.Fatalf("guest %d: %v", gi, err)
		}
	}
}
