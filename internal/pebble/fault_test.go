package pebble

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"universalnet/internal/topology"
)

// Fault injection: every class of illegal mutation applied to a valid
// protocol must be rejected by Validate. This pins down the model rules of
// §3.1 operationally.

func buildValidProtocol(t *testing.T) *Protocol {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	guest, err := topology.RandomGuest(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	return pr
}

// clone deep-copies the protocol's step structure.
func clone(pr *Protocol) *Protocol {
	c := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T, Steps: make([][]Op, len(pr.Steps))}
	for i, step := range pr.Steps {
		c.Steps[i] = append([]Op(nil), step...)
	}
	return c
}

func findOp(pr *Protocol, kind OpKind) (step, idx int) {
	for si := range pr.Steps {
		for oi, op := range pr.Steps[si] {
			if op.Kind == kind {
				return si, oi
			}
		}
	}
	return -1, -1
}

func TestFaultDropReceive(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	si, oi := findOp(pr, Receive)
	if si < 0 {
		t.Skip("no receive ops")
	}
	pr.Steps[si] = append(pr.Steps[si][:oi], pr.Steps[si][oi+1:]...)
	if _, err := pr.Validate(); err == nil {
		t.Error("dropped receive not detected")
	}
}

func TestFaultDropSend(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	si, oi := findOp(pr, Send)
	if si < 0 {
		t.Skip("no send ops")
	}
	pr.Steps[si] = append(pr.Steps[si][:oi], pr.Steps[si][oi+1:]...)
	if _, err := pr.Validate(); err == nil {
		t.Error("dropped send not detected")
	}
}

func TestFaultDoubleOpOnProcessor(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	si, oi := findOp(pr, Generate)
	op := pr.Steps[si][oi]
	op.Pebble.P = (op.Pebble.P + 1) % pr.Guest.N()
	pr.Steps[si] = append(pr.Steps[si], op) // same processor, second op
	if _, err := pr.Validate(); err == nil {
		t.Error("two ops on one processor not detected")
	}
}

func TestFaultGenerateTooEarly(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	// Generate a time-3 pebble in host step 1 (predecessors of time 2
	// cannot exist anywhere yet).
	pr.Steps[0] = append([]Op{}, Op{Kind: Generate, Proc: pr.Host.N() - 1, Pebble: Type{P: 0, T: pr.T}})
	if _, err := pr.Validate(); err == nil {
		t.Error("premature generation not detected")
	}
}

func TestFaultSendUnheldPebble(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	// Find two adjacent hosts and inject a transfer of a never-created
	// pebble at step 0.
	var u, v int
	for _, e := range pr.Host.Edges() {
		u, v = e.U, e.V
		break
	}
	bad := Type{P: 0, T: pr.T} // final pebble cannot exist at step 1
	pr.Steps[0] = []Op{
		{Kind: Send, Proc: u, Pebble: bad, Peer: v},
		{Kind: Receive, Proc: v, Pebble: bad, Peer: u},
	}
	if _, err := pr.Validate(); err == nil {
		t.Error("send of unheld pebble not detected")
	}
}

func TestFaultRemoveFinalGeneration(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	// Remove every generation of P0's final pebble.
	target := Type{P: 0, T: pr.T}
	for si := range pr.Steps {
		var kept []Op
		for _, op := range pr.Steps[si] {
			if op.Kind == Generate && op.Pebble == target {
				continue
			}
			kept = append(kept, op)
		}
		pr.Steps[si] = kept
	}
	if _, err := pr.Validate(); err == nil {
		t.Error("missing final pebble not detected")
	}
}

func TestFaultSendAcrossNonEdge(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	// Find a non-adjacent host pair.
	var u, v int
	found := false
	for a := 0; a < pr.Host.N() && !found; a++ {
		for b := 0; b < pr.Host.N(); b++ {
			if a != b && !pr.Host.HasEdge(a, b) {
				u, v, found = a, b, true
				break
			}
		}
	}
	if !found {
		t.Skip("host is complete")
	}
	pb := Type{P: 0, T: 0}
	pr.Steps[0] = []Op{
		{Kind: Send, Proc: u, Pebble: pb, Peer: v},
		{Kind: Receive, Proc: v, Pebble: pb, Peer: u},
	}
	if _, err := pr.Validate(); err == nil {
		t.Error("send across non-edge not detected")
	}
}

func TestFaultReceiveWithoutSend(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	var e = pr.Host.Edges()[0]
	pr.Steps[0] = []Op{{Kind: Receive, Proc: e.V, Pebble: Type{P: 0, T: 0}, Peer: e.U}}
	if _, err := pr.Validate(); err == nil {
		t.Error("receive without send not detected")
	}
}

func TestFaultBadOpKind(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	pr.Steps[0] = append(pr.Steps[0], Op{Kind: OpKind(42), Proc: pr.Host.N() - 1})
	if _, err := pr.Validate(); err == nil {
		t.Error("unknown op kind not detected")
	}
}

func TestFaultProcOutOfRange(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	pr.Steps[0] = append(pr.Steps[0], Op{Kind: Generate, Proc: 999, Pebble: Type{P: 0, T: 1}})
	if _, err := pr.Validate(); err == nil {
		t.Error("out-of-range processor not detected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pr := buildValidProtocol(t)
	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.T != pr.T || back.HostSteps() != pr.HostSteps() || back.OpCount() != pr.OpCount() {
		t.Errorf("round trip changed shape: T=%d steps=%d ops=%d", back.T, back.HostSteps(), back.OpCount())
	}
	if !back.Guest.Equal(pr.Guest) || !back.Host.Equal(pr.Host) {
		t.Error("round trip changed graphs")
	}
	if _, err := back.Validate(); err != nil {
		t.Errorf("round-tripped protocol invalid: %v", err)
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"guest":{"n":2,"edges":[[0,5]]},"host":{"n":1},"t":1,"steps":[]}`)); err == nil {
		t.Error("invalid edge accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"guest":{"n":1},"host":{"n":1},"t":1,"steps":[[{"kind":"explode","proc":0,"p":0,"t":1}]]}`)); err == nil {
		t.Error("unknown op kind accepted")
	}
}

func TestWriteJSONRejectsBadKind(t *testing.T) {
	pr := clone(buildValidProtocol(t))
	pr.Steps[0] = append(pr.Steps[0], Op{Kind: OpKind(9), Proc: 0})
	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err == nil {
		t.Error("unknown kind serialized")
	}
}
