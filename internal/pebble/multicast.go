package pebble

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

// BuildMulticastProtocol is the third protocol builder: like the phase-based
// builder, but each pebble is distributed along a shortest-path tree that
// covers all of its destination hosts, so shared path prefixes carry ONE
// copy that fans out (pebbles are copyable — the model's Send keeps the
// original). Unicast builders ship a separate copy per destination; the
// multicast tree ships one per tree edge, cutting both operations and, on
// branching hosts, host steps.
func BuildMulticastProtocol(guest, host *graph.Graph, f []int, T int) (*Protocol, error) {
	n, m := guest.N(), host.N()
	if T < 1 {
		return nil, fmt.Errorf("pebble: need T ≥ 1, got %d", T)
	}
	if !host.IsConnected() {
		return nil, fmt.Errorf("pebble: host must be connected")
	}
	if f == nil {
		f = BalancedAssignment(n, m)
	}
	if len(f) != n {
		return nil, fmt.Errorf("pebble: assignment length %d, want %d", len(f), n)
	}
	for i, q := range f {
		if q < 0 || q >= m {
			return nil, fmt.Errorf("pebble: guest %d assigned to invalid host %d", i, q)
		}
	}
	guestsOf := make([][]int, m)
	for i := 0; i < n; i++ {
		guestsOf[f[i]] = append(guestsOf[f[i]], i)
	}
	maxLoad := 0
	for _, gs := range guestsOf {
		if len(gs) > maxLoad {
			maxLoad = len(gs)
		}
	}

	// BFS parents from each source host (cached): parent[src][v] = previous
	// hop on a shortest path src→v.
	parentCache := make(map[int][]int)
	parentsFrom := func(src int) []int {
		if p, ok := parentCache[src]; ok {
			return p
		}
		parent := make([]int, m)
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range host.Neighbors(v) {
				if parent[w] < 0 {
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		parentCache[src] = parent
		return parent
	}

	// Multicast transfer: one pending hop per tree edge; a hop becomes
	// eligible once its tail holds the pebble.
	type hop struct {
		pb       Type
		from, to int
	}
	pr := &Protocol{Guest: guest, Host: host, T: T}
	for t := 1; t <= T; t++ {
		// Generation phase.
		for r := 0; r < maxLoad; r++ {
			var ops []Op
			for q := 0; q < m; q++ {
				if r < len(guestsOf[q]) {
					ops = append(ops, Op{Kind: Generate, Proc: q, Pebble: Type{P: guestsOf[q][r], T: t}})
				}
			}
			pr.Steps = append(pr.Steps, ops)
		}
		if t == T {
			break
		}
		// Build the multicast trees: for each guest i, the union of
		// shortest paths from f(i) to every destination host.
		var hops []hop
		holds := make(map[[2]int]bool) // (host, guest) → holds (P_i, t)
		for i := 0; i < n; i++ {
			src := f[i]
			holds[[2]int{src, i}] = true
			dsts := map[int]bool{}
			for _, j := range guest.Neighbors(i) {
				if f[j] != src {
					dsts[f[j]] = true
				}
			}
			if len(dsts) == 0 {
				continue
			}
			parent := parentsFrom(src)
			edges := map[[2]int]bool{} // (from, to) tree edges, deduped
			for d := range dsts {
				for v := d; v != src; v = parent[v] {
					edges[[2]int{parent[v], v}] = true
				}
			}
			keys := make([][2]int, 0, len(edges))
			for e := range edges {
				keys = append(keys, e)
			}
			sort.Slice(keys, func(a, b int) bool {
				if keys[a][0] != keys[b][0] {
					return keys[a][0] < keys[b][0]
				}
				return keys[a][1] < keys[b][1]
			})
			for _, e := range keys {
				hops = append(hops, hop{pb: Type{P: i, T: t}, from: e[0], to: e[1]})
			}
		}
		// Schedule: each step, run eligible hops greedily (one op per
		// processor). A hop is eligible when its tail holds the pebble.
		guard := 0
		remaining := len(hops)
		done := make([]bool, len(hops))
		for remaining > 0 {
			guard++
			if guard > 16*(m+n)*(maxLoad+2) {
				return nil, fmt.Errorf("pebble: multicast distribution stalled at guest step %d", t)
			}
			busy := make(map[int]bool)
			var ops []Op
			progressed := false
			for hi := range hops {
				if done[hi] {
					continue
				}
				hp := &hops[hi]
				if !holds[[2]int{hp.from, hp.pb.P}] {
					continue
				}
				if busy[hp.from] || busy[hp.to] {
					continue
				}
				busy[hp.from] = true
				busy[hp.to] = true
				ops = append(ops, Op{Kind: Send, Proc: hp.from, Pebble: hp.pb, Peer: hp.to})
				ops = append(ops, Op{Kind: Receive, Proc: hp.to, Pebble: hp.pb, Peer: hp.from})
				done[hi] = true
				remaining--
				progressed = true
			}
			if !progressed {
				return nil, fmt.Errorf("pebble: multicast deadlock at guest step %d (%d hops left)", t, remaining)
			}
			// Apply holds after the step (synchronous semantics).
			for _, op := range ops {
				if op.Kind == Receive {
					holds[[2]int{op.Proc, op.Pebble.P}] = true
				}
			}
			pr.Steps = append(pr.Steps, ops)
		}
	}
	return pr, nil
}
