package pebble

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"universalnet/internal/topology"
)

// TestShardedBuildMatchesSerial pins the tentpole invariant: for every
// worker count, the merged sharded build is byte-identical to the serial
// queued builder — same steps, same op order within each step.
func TestShardedBuildMatchesSerial(t *testing.T) {
	workerCounts := []int{1, 2, 3, 5, 8, 1000}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		T := 2 + rng.Intn(2)
		guest, err := topology.RandomGuest(rng, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		h, err := topology.Torus(9)
		if seed%2 == 1 {
			h, err = topology.Mesh(16)
		}
		if err != nil {
			t.Fatal(err)
		}
		f := RandomizedAssignment(n, h.N(), seed)
		serial, err := BuildQueuedEmbeddingProtocol(guest, h, f, T)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, workers := range workerCounts {
			got := &Protocol{Guest: guest, Host: h, T: T}
			err := StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, f, T,
				BuildShardedOptions{Workers: workers}, &ProtocolSink{Proto: got})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(serial.Steps, got.Steps) {
				t.Fatalf("seed %d workers %d: sharded build diverged from serial", seed, workers)
			}
		}
	}
}

// TestShardedBuildSegmentsThroughPipe runs the sharded build into a Pipe —
// the production path, where the merge uses AppendStepSegments — and
// checks the consumed stream against the serial builder.
func TestShardedBuildSegmentsThroughPipe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	guest, err := topology.RandomGuest(rng, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildQueuedEmbeddingProtocol(guest, h, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipe(4)
	go func() {
		pipe.CloseSend(StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, nil, 3,
			BuildShardedOptions{Workers: 4, Window: 2}, pipe))
	}()
	got, err := Materialize(serial.Spec(), pipe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Steps, got.Steps) {
		t.Fatal("piped sharded build diverged from serial")
	}
}

// TestShardedBuildInvalidInputs: input validation fires before any worker
// spawns and matches the serial builder's errors.
func TestShardedBuildInvalidInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(9)
	if err != nil {
		t.Fatal(err)
	}
	badF := make([]int, 6)
	badF[3] = 99
	serialErr := StreamQueuedEmbeddingProtocol(guest, h, badF, 2, &ProtocolSink{Proto: &Protocol{}})
	shardErr := StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, badF, 2,
		BuildShardedOptions{Workers: 3}, &ProtocolSink{Proto: &Protocol{}})
	if serialErr == nil || shardErr == nil {
		t.Fatalf("invalid assignment accepted: serial %v, sharded %v", serialErr, shardErr)
	}
	if serialErr.Error() != shardErr.Error() {
		t.Fatalf("error mismatch: serial %q, sharded %q", serialErr, shardErr)
	}
}

// errAfterSink fails the k-th AppendStep — the shape of a consumer
// (validator) rejecting the stream mid-flight.
type errAfterSink struct {
	left int
	err  error
}

func (s *errAfterSink) AppendStep(ops []Op) error {
	if s.left--; s.left < 0 {
		return s.err
	}
	return nil
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline; parallel teardown is asynchronous only in the scheduler, not in
// the harness (streamSharded joins its workers), so this guards against
// regressions that leak.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedBuildSinkErrorTearsDown: a failing sink (the validator-error
// path) must surface its error and leave no workers or merger behind.
func TestShardedBuildSinkErrorTearsDown(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	before := runtime.NumGoroutine()
	for _, workers := range []int{2, 4} {
		err := StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, nil, 3,
			BuildShardedOptions{Workers: workers}, &errAfterSink{left: 5, err: boom})
		if err != boom {
			t.Fatalf("workers %d: want sink error, got %v", workers, err)
		}
	}
	waitGoroutines(t, before)
}

// TestShardedBuildContextCancel: cancelling the context mid-stream tears
// all workers down, returns ctx.Err(), and leaks nothing.
func TestShardedBuildContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	guest, err := topology.RandomGuest(rng, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pipe := NewPipe(2)
	done := make(chan error, 1)
	go func() {
		done <- StreamQueuedEmbeddingProtocolSharded(ctx, guest, h, nil, 4,
			BuildShardedOptions{Workers: 3, Window: 2}, pipe)
	}()
	// Keep draining so the merge is never parked on the main pipe — the
	// caller's job (RunStreamingEmbedding abandons the pipe instead).
	go func() {
		for {
			if _, err := pipe.NextStep(); err != nil {
				return
			}
		}
	}()
	err = <-done
	pipe.CloseSend(err)
	pipe.CloseRecv()
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitGoroutines(t, before)
}

// TestShardedBuildAbandonedPipe: the consumer walking away from the merged
// stream (CloseRecv) unblocks and ends the whole build fan-in.
func TestShardedBuildAbandonedPipe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	guest, err := topology.RandomGuest(rng, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	pipe := NewPipe(1)
	done := make(chan error, 1)
	go func() {
		done <- StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, nil, 4,
			BuildShardedOptions{Workers: 4, Window: 2}, pipe)
	}()
	if _, err := pipe.NextStep(); err != nil {
		t.Fatal(err)
	}
	pipe.CloseRecv()
	if err := <-done; err != ErrPipeClosed {
		t.Fatalf("want ErrPipeClosed, got %v", err)
	}
	waitGoroutines(t, before)
}

// TestMergeAlignmentGuard: streams of unequal length are an internal
// invariant violation the merger must report, not deadlock on.
func TestMergeAlignmentGuard(t *testing.T) {
	mkPipe := func(steps int) *Pipe {
		p := NewPipe(4)
		go func() {
			for i := 0; i < steps; i++ {
				if err := p.AppendStep([]Op{{Kind: Generate, Proc: i}}); err != nil {
					p.CloseSend(err)
					return
				}
			}
			p.CloseSend(nil)
		}()
		return p
	}
	pipes := []*Pipe{mkPipe(2), mkPipe(3)}
	err := mergeStreams(pipes, &ProtocolSink{Proto: &Protocol{}})
	for _, p := range pipes {
		p.CloseRecv()
	}
	if err == nil || err.Error() != "pebble: sharded build: worker streams misaligned" {
		t.Fatalf("want misalignment error, got %v", err)
	}
}

// TestShardedBuildStats: with MeasureStalls, the harness reports worker
// and merge accounting.
func TestShardedBuildStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	var stats BuildShardedStats
	err = StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, nil, 2,
		BuildShardedOptions{Workers: 2, MeasureStalls: true, Stats: &stats},
		&ProtocolSink{Proto: &Protocol{Guest: guest, Host: h, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 2 {
		t.Fatalf("stats.Workers = %d, want 2", stats.Workers)
	}
	if stats.BusyNs < 0 {
		t.Fatalf("negative busy time %d", stats.BusyNs)
	}
}

// drainCount consumes a source to EOF and returns the step count.
func drainCount(t *testing.T, src StepSource) int {
	t.Helper()
	steps := 0
	for {
		_, err := src.NextStep()
		if err == io.EOF {
			return steps
		}
		if err != nil {
			t.Fatal(err)
		}
		steps++
	}
}

// TestShardedBuildEmptySubSteps: with more workers than busy processors,
// some workers emit only empty sub-steps; the merged stream must still
// align and match the serial step count (fmt is anchored by the serial
// build elsewhere — this guards the step framing).
func TestShardedBuildEmptySubSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	guest, err := topology.RandomGuest(rng, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := topology.Torus(36)
	if err != nil {
		t.Fatal(err)
	}
	// Cram all guests onto one host: every other worker range is idle.
	f := make([]int, 8)
	serial, err := BuildQueuedEmbeddingProtocol(guest, h, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewPipe(4)
	go func() {
		pipe.CloseSend(StreamQueuedEmbeddingProtocolSharded(context.Background(), guest, h, f, 2,
			BuildShardedOptions{Workers: 6}, pipe))
	}()
	if got := drainCount(t, pipe); got != serial.HostSteps() {
		t.Fatalf("step count %d, want %d", got, serial.HostSteps())
	}
}
