package pebble

import (
	"math/rand"
	"testing"

	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

// The stateful-replay tests close the loop between the pebble model and the
// computation engine: every protocol this package can produce must CARRY
// the actual computation, not just its dependency structure.

func TestEmbeddingProtocolCarriesComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	if err := VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedProtocolCarriesComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildPipelinedProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	if err := VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
}

func TestRandomProtocolCarriesComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RandomProtocol(guest, host, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	if err := VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRejectsWrongGuest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(other, rng)
	if _, err := StatefulReplay(pr, comp); err == nil {
		t.Error("wrong-guest computation accepted")
	}
}

func TestReplayDetectsBrokenDataflow(t *testing.T) {
	// A structurally valid-looking protocol with a receive whose sender
	// never held the state: construct manually and check the replay errors.
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rand.New(rand.NewSource(5)))
	// Remove every op from the first distribution step (breaks dataflow but
	// keeps per-step legality of the remaining ops until generation needs
	// the missing pebbles — the replay must fail one way or the other).
	c := clone(pr)
	for si := range c.Steps {
		hasSend := false
		for _, op := range c.Steps[si] {
			if op.Kind == Send {
				hasSend = true
			}
		}
		if hasSend {
			c.Steps[si] = nil
			break
		}
	}
	if err := VerifyCarries(c, comp); err == nil {
		t.Error("broken dataflow not detected")
	}
}

func TestGuestOfHelper(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if guestOf(pr) != guest {
		t.Error("guestOf returned a different graph")
	}
}

func TestTreeCacheProtocolCarriesComputation(t *testing.T) {
	// Cross-package in spirit: the tree-cached host's protocol is produced
	// in internal/universal, but its carrying property is checked here via
	// a protocol of the same shape (deep pipelined tournament) built through
	// the random builder on a tree-like host.
	rng := rand.New(rand.NewSource(6))
	guest, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.CompleteBinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RandomProtocol(guest, host, 2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	if err := VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
}
