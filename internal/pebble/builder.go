package pebble

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

// BuildEmbeddingProtocol constructs a simulation protocol in the style of
// Theorem 2.1: guest processors are statically mapped onto host processors
// by the assignment f (f[i] = host of guest i); each guest step is simulated
// by a generation phase (each host generates the new pebbles of its guests,
// one per host step) followed by a distribution phase (each new pebble is
// copied along shortest host paths to the hosts of all guest neighbors,
// store-and-forward, one operation per processor per step).
//
// If f is nil, a balanced round-robin assignment i ↦ i mod m is used.
// The returned protocol passes Validate; its Inefficiency() is the measured
// k of the run.
func BuildEmbeddingProtocol(guest, host *graph.Graph, f []int, T int) (*Protocol, error) {
	pr := &Protocol{Guest: guest, Host: host, T: T}
	if err := StreamEmbeddingProtocol(guest, host, f, T, &ProtocolSink{Proto: pr}); err != nil {
		return nil, err
	}
	return pr, nil
}

// StreamEmbeddingProtocol is the streaming core of BuildEmbeddingProtocol:
// identical schedule, but each host step is emitted through sink as soon as
// it is assembled, so the protocol never has to exist as a whole. The ops
// slice passed to the sink is reused across steps.
func StreamEmbeddingProtocol(guest, host *graph.Graph, f []int, T int, sink StepSink) error {
	n, m := guest.N(), host.N()
	if T < 1 {
		return fmt.Errorf("pebble: need T ≥ 1, got %d", T)
	}
	if !host.IsConnected() {
		return fmt.Errorf("pebble: host must be connected")
	}
	if f == nil {
		f = make([]int, n)
		for i := range f {
			f[i] = i % m
		}
	}
	if len(f) != n {
		return fmt.Errorf("pebble: assignment length %d, want %d", len(f), n)
	}
	for i, q := range f {
		if q < 0 || q >= m {
			return fmt.Errorf("pebble: guest %d assigned to invalid host %d", i, q)
		}
	}

	// Guests per host, in index order: generation schedule.
	guestsOf := make([][]int, m)
	for i := 0; i < n; i++ {
		guestsOf[f[i]] = append(guestsOf[f[i]], i)
	}
	maxLoad := 0
	for _, gs := range guestsOf {
		if len(gs) > maxLoad {
			maxLoad = len(gs)
		}
	}

	// Distribution tasks per guest step: pebble (P_i, t) from f(i) to the
	// distinct hosts of i's neighbors. The task list is identical for every t
	// up to the pebble's time coordinate, so routes are planned once into a
	// reusable buffer; `seen` is a stamped slice rather than a per-guest map.
	type task struct {
		pb  Type
		at  int
		dst int
	}
	var tasks []task
	seenStamp := make([]int32, m)
	seenEpoch := int32(0)
	buildTasks := func(t int) []task {
		tasks = tasks[:0]
		for i := 0; i < n; i++ {
			seenEpoch++
			seenStamp[f[i]] = seenEpoch
			for _, j := range guest.Neighbors(i) {
				h := f[j]
				if seenStamp[h] != seenEpoch {
					seenStamp[h] = seenEpoch
					tasks = append(tasks, task{pb: Type{P: i, T: t}, at: f[i], dst: h})
				}
			}
		}
		return tasks
	}

	// Next-hop via cached BFS distance-to-destination.
	distCache := make([][]int, m)
	distTo := func(dst int) []int {
		if d := distCache[dst]; d != nil {
			return d
		}
		d := host.BFS(dst)
		distCache[dst] = d
		return d
	}
	nextHop := func(at, dst int) int {
		d := distTo(dst)
		for _, w := range host.Neighbors(at) {
			if d[w] == d[at]-1 {
				return w
			}
		}
		return -1
	}

	// Ops are assembled in a reusable scratch handed to the sink each step;
	// retaining sinks (ProtocolSink, ChunkedLog) copy, so steps carry no
	// append-growth slack in the materialized form.
	var opsBuf []Op
	emit := func() error { return sink.AppendStep(opsBuf) }
	busyStamp := make([]int32, m)
	busyEpoch := int32(0)
	for t := 1; t <= T; t++ {
		// Generation phase: maxLoad host steps.
		for r := 0; r < maxLoad; r++ {
			opsBuf = opsBuf[:0]
			for q := 0; q < m; q++ {
				if r < len(guestsOf[q]) {
					opsBuf = append(opsBuf, Op{Kind: Generate, Proc: q, Pebble: Type{P: guestsOf[q][r], T: t}})
				}
			}
			if err := emit(); err != nil {
				return err
			}
		}
		if t == T {
			break // final pebbles need not be distributed
		}
		// Distribution phase.
		tasks := buildTasks(t)
		guard := 0
		for remaining := len(tasks); remaining > 0; {
			guard++
			if guard > 16*(m+n)*(maxLoad+1) {
				return fmt.Errorf("pebble: distribution stalled at guest step %d", t)
			}
			busyEpoch++
			opsBuf = opsBuf[:0]
			for ti := range tasks {
				tk := &tasks[ti]
				if tk.at == tk.dst {
					continue
				}
				if busyStamp[tk.at] == busyEpoch {
					continue
				}
				v := nextHop(tk.at, tk.dst)
				if v < 0 {
					return fmt.Errorf("pebble: no route from %d to %d", tk.at, tk.dst)
				}
				if busyStamp[v] == busyEpoch {
					continue
				}
				busyStamp[tk.at] = busyEpoch
				busyStamp[v] = busyEpoch
				opsBuf = append(opsBuf, Op{Kind: Send, Proc: tk.at, Pebble: tk.pb, Peer: v})
				opsBuf = append(opsBuf, Op{Kind: Receive, Proc: v, Pebble: tk.pb, Peer: tk.at})
				tk.at = v
				if tk.at == tk.dst {
					remaining--
				}
			}
			if len(opsBuf) == 0 {
				return fmt.Errorf("pebble: no progress in distribution at guest step %d", t)
			}
			if err := emit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// BalancedAssignment returns the canonical load-balanced map f of
// Theorem 2.1's proof: guest i to host i mod m; every host receives at most
// ⌈n/m⌉ guests.
func BalancedAssignment(n, m int) []int {
	f := make([]int, n)
	for i := range f {
		f[i] = i % m
	}
	return f
}

// LoadOf returns the per-host guest counts of an assignment.
func LoadOf(f []int, m int) []int {
	load := make([]int, m)
	for _, q := range f {
		load[q]++
	}
	return load
}

// MaxLoad returns the largest entry of LoadOf.
func MaxLoad(f []int, m int) int {
	max := 0
	for _, l := range LoadOf(f, m) {
		if l > max {
			max = l
		}
	}
	return max
}

// RandomizedAssignment assigns guests to hosts by a seeded shuffle of the
// balanced assignment, decorrelating guest structure from host locality.
func RandomizedAssignment(n, m int, seed int64) []int {
	f := BalancedAssignment(n, m)
	// Fisher–Yates with a small deterministic LCG to avoid importing rand
	// here; assignments only need decorrelation, not statistical quality.
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(k int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(k))
	}
	for i := n - 1; i > 0; i-- {
		j := next(i + 1)
		f[i], f[j] = f[j], f[i]
	}
	return f
}

// FragmentPickers: strategies for choosing b_i among the generators.

// PickFirst chooses the smallest-index generator.
func PickFirst(_ int, _ []int) int { return 0 }

// PickLightest returns a picker that chooses the generator holding the
// fewest time-t₀ pebbles — the choice that makes |D_i| small, mirroring the
// Main Lemma's part (3).
func (st *State) PickLightest(t0 int) func(i int, gens []int) int {
	return func(_ int, gens []int) int {
		best, bestLoad := 0, -1
		for k, q := range gens {
			load := st.guestsOnCount(q, t0)
			if bestLoad < 0 || load < bestLoad {
				best, bestLoad = k, load
			}
		}
		return best
	}
}

// SortedCopy returns a sorted copy of xs (test helper shared by fragment
// assertions).
func SortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
