package pebble

import (
	"encoding/json"
	"fmt"
	"io"

	"universalnet/internal/graph"
)

// Wire format for protocols: graphs as edge lists, operations verbatim.
// Stable across versions of the in-memory representation, so recorded
// protocols can be archived and replayed (uninet pebble -save/-load).

type wireGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

type wireOp struct {
	Kind   string `json:"kind"`
	Proc   int    `json:"proc"`
	P      int    `json:"p"`
	T      int    `json:"t"`
	Peer   int    `json:"peer,omitempty"`
	HasPtr bool   `json:"-"`
}

type wireProtocol struct {
	Guest wireGraph  `json:"guest"`
	Host  wireGraph  `json:"host"`
	T     int        `json:"t"`
	Steps [][]wireOp `json:"steps"`
}

func toWireGraph(g *graph.Graph) wireGraph {
	w := wireGraph{N: g.N()}
	for _, e := range g.Edges() {
		w.Edges = append(w.Edges, [2]int{e.U, e.V})
	}
	return w
}

func fromWireGraph(w wireGraph) (*graph.Graph, error) {
	b := graph.NewBuilder(w.N)
	for _, e := range w.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

func opKindString(k OpKind) (string, error) {
	switch k {
	case Generate, Send, Receive:
		return k.String(), nil
	}
	return "", fmt.Errorf("pebble: unknown op kind %d", int(k))
}

func opKindFromString(s string) (OpKind, error) {
	switch s {
	case "generate":
		return Generate, nil
	case "send":
		return Send, nil
	case "receive":
		return Receive, nil
	}
	return 0, fmt.Errorf("pebble: unknown op kind %q", s)
}

// WriteJSON serializes the protocol.
func (pr *Protocol) WriteJSON(w io.Writer) error {
	wp := wireProtocol{
		Guest: toWireGraph(pr.Guest),
		Host:  toWireGraph(pr.Host),
		T:     pr.T,
		Steps: make([][]wireOp, len(pr.Steps)),
	}
	for si, step := range pr.Steps {
		for _, op := range step {
			ks, err := opKindString(op.Kind)
			if err != nil {
				return err
			}
			wp.Steps[si] = append(wp.Steps[si], wireOp{
				Kind: ks, Proc: op.Proc, P: op.Pebble.P, T: op.Pebble.T, Peer: op.Peer,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&wp)
}

// ReadJSON deserializes a protocol written by WriteJSON. The result is not
// validated; call Validate to replay and check it.
func ReadJSON(r io.Reader) (*Protocol, error) {
	var wp wireProtocol
	dec := json.NewDecoder(r)
	if err := dec.Decode(&wp); err != nil {
		return nil, fmt.Errorf("pebble: decode: %w", err)
	}
	guest, err := fromWireGraph(wp.Guest)
	if err != nil {
		return nil, fmt.Errorf("pebble: guest graph: %w", err)
	}
	host, err := fromWireGraph(wp.Host)
	if err != nil {
		return nil, fmt.Errorf("pebble: host graph: %w", err)
	}
	pr := &Protocol{Guest: guest, Host: host, T: wp.T, Steps: make([][]Op, len(wp.Steps))}
	for si, step := range wp.Steps {
		for _, wop := range step {
			kind, err := opKindFromString(wop.Kind)
			if err != nil {
				return nil, err
			}
			pr.Steps[si] = append(pr.Steps[si], Op{
				Kind: kind, Proc: wop.Proc,
				Pebble: Type{P: wop.P, T: wop.T}, Peer: wop.Peer,
			})
		}
	}
	return pr, nil
}
