package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"universalnet/internal/obs"
)

func TestGetAddBasics(t *testing.T) {
	reg := obs.New()
	c := New[string, int]("test", 100, func(int) int64 { return 10 }, reg)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Add("a", 2) // replace
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Get(a) after replace = %d, want 2", v)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len=%d Bytes=%d, want 1, 10", c.Len(), c.Bytes())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss", st)
	}
	if reg.Counter("test.hits").Value() != 2 {
		t.Fatal("obs counter test.hits not wired")
	}
}

// TestEvictionOrder pins the byte-budget LRU contract: when the budget
// overflows, the least-recently-*used* entry goes first — a Get refreshes
// recency, so the untouched entry is the victim.
func TestEvictionOrder(t *testing.T) {
	reg := obs.New()
	c := New[string, int]("test", 30, func(int) int64 { return 10 }, reg)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)
	c.Get("a") // refresh a: LRU order is now b, c, a
	c.Add("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if got := reg.Counter("test.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if c.Bytes() != 30 {
		t.Errorf("Bytes = %d, want 30", c.Bytes())
	}
	if got := reg.Gauge("test.bytes").Value(); got != 30 {
		t.Errorf("bytes gauge = %d, want 30", got)
	}
}

func TestOversizeValueNotStored(t *testing.T) {
	c := New[string, []byte]("test", 8, func(b []byte) int64 { return int64(len(b)) }, nil)
	c.Add("small", make([]byte, 4))
	c.Add("huge", make([]byte, 64))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversize value stored")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("oversize insert flushed an unrelated entry")
	}
}

// TestGetOrComputeSingleflight is the dedup contract of the ISSUE: N
// concurrent identical requests must trigger exactly one computation, and
// every caller gets its result.
func TestGetOrComputeSingleflight(t *testing.T) {
	c := New[string, int]("test", 1<<20, nil, obs.New())
	var computes atomic.Int64
	const N = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.GetOrCompute("key", func() (int, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return 42, nil
			})
			if err != nil {
				errs <- err
			} else if v != 42 {
				errs <- fmt.Errorf("got %d, want 42", v)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for identical concurrent requests, want exactly 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced+st.Hits != N-1 {
		t.Errorf("coalesced(%d) + hits(%d) = %d, want %d followers",
			st.Coalesced, st.Hits, st.Coalesced+st.Hits, N-1)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[string, int]("test", 100, nil, nil)
	boom := errors.New("boom")
	calls := 0
	if _, err := c.GetOrCompute("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := c.GetOrCompute("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v; want 7, nil", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute called %d times, want 2 (errors are not cached)", calls)
	}
	if v, _ = c.GetOrCompute("k", func() (int, error) { calls++; return 0, boom }); v != 7 || calls != 2 {
		t.Fatal("successful result not served from cache")
	}
}

// TestGetOrComputePanicSettlesFlight is the leak half of the ISSUE's
// singleflight audit: a panicking compute must not strand the in-flight
// entry. Followers coalesced onto the doomed flight get ErrComputePanicked
// instead of blocking forever, the panic still propagates on the leader's
// goroutine, and a later call for the same key computes fresh.
func TestGetOrComputePanicSettlesFlight(t *testing.T) {
	c := New[string, int]("test", 100, nil, obs.New())
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		c.GetOrCompute("k", func() (int, error) {
			close(entered)
			<-release
			panic("compute exploded")
		})
	}()
	<-entered

	const followers = 4
	var wg sync.WaitGroup
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.GetOrCompute("k", func() (int, error) {
				t.Error("follower elected leader while flight open")
				return 0, nil
			})
			errs <- err
		}()
	}
	// Give the followers a moment to coalesce onto the flight, then blow it up.
	for c.Stats().Coalesced < followers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrComputePanicked) {
			t.Errorf("follower err = %v, want ErrComputePanicked", err)
		}
	}
	if r := <-leaderDone; r != "compute exploded" {
		t.Errorf("leader panic = %v, want propagated", r)
	}
	// The flight must be gone: a fresh call computes and caches normally.
	v, err := c.GetOrCompute("k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("post-panic retry = %d, %v; want 5, nil", v, err)
	}
}

// TestGetOrComputeCtxFollowerCancel: a follower whose context ends while
// waiting on another caller's flight returns promptly with ctx.Err(), and
// its departure does not disturb the flight — the leader's result is still
// cached and served to patient callers.
func TestGetOrComputeCtxFollowerCancel(t *testing.T) {
	c := New[string, int]("test", 100, nil, obs.New())
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := c.GetOrCompute("k", func() (int, error) {
			close(entered)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("leader = %d, %v; want 42, nil", v, err)
		}
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	impatient := make(chan error, 1)
	go func() {
		_, err := c.GetOrComputeCtx(ctx, "k", func() (int, error) {
			t.Error("cancelled follower elected leader")
			return 0, nil
		})
		impatient <- err
	}()
	for c.Stats().Coalesced < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-impatient:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled follower err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled follower still blocked on the flight")
	}

	close(release)
	wg.Wait()
	if v, ok := c.Get("k"); !ok || v != 42 {
		t.Fatalf("leader result not cached after follower abandoned: %d, %v", v, ok)
	}
}

// TestGetOrComputeCtxLeaderScope pins the documented contract that ctx
// governs only the follower wait: a caller holding an already-cancelled
// context that is elected leader still computes (its result may serve
// followers with live contexts).
func TestGetOrComputeCtxLeaderScope(t *testing.T) {
	c := New[string, int]("test", 100, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := c.GetOrComputeCtx(ctx, "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("cancelled leader = %d, %v; want 9, nil (ctx scopes the wait, not the compute)", v, err)
	}
	if v, ok := c.Get("k"); !ok || v != 9 {
		t.Fatal("cancelled leader's result not cached")
	}
}

// TestConcurrentStress hammers a small cache from many goroutines with
// overlapping keys so inserts, hits, coalescing and evictions all race.
// Meaningful under -race; the invariant checks are byte accounting and
// that values never cross keys.
func TestConcurrentStress(t *testing.T) {
	c := New[int, int]("stress", 64, nil, obs.New()) // budget = 64 entries, 100 keys → constant eviction
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := (w*31 + i) % 100
				v, err := c.GetOrCompute(key, func() (int, error) {
					if key%17 == 3 {
						return 0, errors.New("transient")
					}
					return key * 1000, nil
				})
				if err == nil && v != key*1000 {
					t.Errorf("key %d returned foreign value %d", key, v)
					return
				}
				if i%7 == 0 {
					c.Get(key)
				}
				if i%13 == 0 {
					c.Add(key, key*1000)
				}
			}
		}(w)
	}
	wg.Wait()
	if b := c.Bytes(); b > 64 {
		t.Errorf("bytes %d exceed budget 64 after stress", b)
	}
	var total int64
	st := c.Stats()
	total = st.Hits + st.Misses + st.Coalesced
	if total == 0 {
		t.Error("no cache traffic recorded")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache[string, int]
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache hit")
	}
	c.Add("a", 1)
	v, err := c.GetOrCompute("a", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("nil GetOrCompute = %d, %v; want pass-through 9", v, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Error("nil cache reports contents")
	}
	c.SetObs(obs.New())
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}
