// Package cache is the laboratory's one shared cache implementation: a
// generics-based LRU with a byte budget, singleflight request coalescing,
// and obs-wired hit/miss/eviction counters. It exists because the paper's
// upper bound (Theorem 2.1) rests on artifacts that are computed once and
// reused many times — the static embedding and the per-step ⌈n/m⌉–⌈n/m⌉
// routing schedule "depend on G only, and, therefore, are known in advance"
// (§2) — so every layer that amortizes such an artifact (routing schedule
// replay, tree-host protocols, service-level results) should do it through
// one implementation with one set of metrics.
//
// Concurrency: all methods are safe for concurrent use. GetOrCompute
// deduplicates concurrent computations of the same key singleflight-style:
// exactly one caller runs the compute function, the rest block and share
// its result (or its error; errors are never cached).
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"universalnet/internal/obs"
)

// ErrComputePanicked is returned to followers coalesced onto a flight whose
// compute function panicked. The panic itself propagates on the leader's
// goroutine; followers get this error instead of blocking forever, and the
// flight is removed so a later call retries.
var ErrComputePanicked = errors.New("cache: compute panicked")

// Cache is a byte-budgeted LRU keyed by K. The zero value is not usable;
// construct with New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	sizeOf   func(V) int64
	entries  map[K]*list.Element
	order    *list.List // front = most recently used; values are *entry[K, V]
	inflight map[K]*flight[V]

	name string
	obs  *obs.Registry
}

type entry[K comparable, V any] struct {
	key   K
	value V
	size  int64
}

// flight is one in-progress computation; followers wait on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a cache that holds at most budget bytes of values, as
// estimated by sizeOf (which must be cheap and deterministic; a nil sizeOf
// charges one byte per entry, making the budget an entry count). name
// prefixes the metric names (<name>.hits, .misses, .evictions, .coalesced,
// and the <name>.bytes gauge); reg may be nil (metrics off) and can be
// attached later with SetObs.
func New[K comparable, V any](name string, budget int64, sizeOf func(V) int64, reg *obs.Registry) *Cache[K, V] {
	if sizeOf == nil {
		sizeOf = func(V) int64 { return 1 }
	}
	if budget < 1 {
		budget = 1
	}
	return &Cache[K, V]{
		budget:   budget,
		sizeOf:   sizeOf,
		entries:  make(map[K]*list.Element),
		order:    list.New(),
		inflight: make(map[K]*flight[V]),
		name:     name,
		obs:      reg,
	}
}

// SetObs attaches reg (nil detaches). Safe concurrently with cache use.
func (c *Cache[K, V]) SetObs(reg *obs.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.obs = reg
	c.mu.Unlock()
}

// count bumps the named counter on the attached registry. Called with c.mu
// held (reads c.obs); obs instruments are themselves atomic.
func (c *Cache[K, V]) count(suffix string) {
	c.obs.Counter(c.name + suffix).Inc()
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.count(".misses")
		return zero, false
	}
	c.order.MoveToFront(el)
	c.count(".hits")
	return el.Value.(*entry[K, V]).value, true
}

// Peek is Get without the miss accounting: a present key counts a hit and
// refreshes recency, an absent key counts nothing. For fast paths that will
// fall through to GetOrCompute (which records the authoritative miss) —
// using Get there would double-count every miss.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	c.order.MoveToFront(el)
	c.count(".hits")
	return el.Value.(*entry[K, V]).value, true
}

// Add inserts (or replaces) key → value, evicting least-recently-used
// entries until the byte budget holds. A value larger than the whole budget
// is not stored (counted as an eviction): caching it would just flush
// everything else for a value that can never be kept.
func (c *Cache[K, V]) Add(key K, value V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, value)
}

// add is Add with c.mu held.
func (c *Cache[K, V]) add(key K, value V) {
	size := c.sizeOf(value)
	if size < 1 {
		size = 1
	}
	if size > c.budget {
		c.count(".evictions")
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		c.bytes += size - e.size
		e.value, e.size = value, size
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&entry[K, V]{key: key, value: value, size: size})
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[K, V])
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.count(".evictions")
	}
	c.obs.Gauge(c.name + ".bytes").Set(c.bytes)
}

// GetOrCompute returns the cached value for key, or runs compute to produce
// it. Concurrent calls for the same key are coalesced: one caller computes,
// the others wait and share the outcome. Successful results are stored
// (subject to the byte budget); errors are returned to every waiter and
// nothing is cached, so a later call retries. A panicking compute settles
// the flight with ErrComputePanicked before propagating, so followers and
// future callers never block on a dead flight.
func (c *Cache[K, V]) GetOrCompute(key K, compute func() (V, error)) (V, error) {
	return c.GetOrComputeCtx(context.Background(), key, compute)
}

// GetOrComputeCtx is GetOrCompute with a caller-scoped wait: a follower
// whose ctx ends while coalesced onto another caller's flight returns
// ctx.Err() immediately and abandons the wait — the flight itself is
// unaffected, and the eventual result is still cached for everyone else.
// The ctx does NOT cancel the compute function: the elected leader runs it
// to completion regardless, because its result is shared with followers
// whose contexts are still live. Compute functions should therefore not
// capture the leader's request context — a leader cancelled mid-compute
// would poison every coalesced follower with an error that belongs to one
// caller. (The service layer runs computes on detached workers for exactly
// this reason.)
func (c *Cache[K, V]) GetOrComputeCtx(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	var zero V
	if c == nil {
		return compute()
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.count(".hits")
		v := el.Value.(*entry[K, V]).value
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.count(".coalesced")
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		if fl.err != nil {
			return zero, fl.err
		}
		return fl.val, nil
	}
	c.count(".misses")
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	settled := false
	defer func() {
		if settled {
			return
		}
		// compute panicked. Settle the flight — followers unblock with
		// ErrComputePanicked and the key retries fresh later — then let the
		// panic continue up the leader's stack.
		fl.err = ErrComputePanicked
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = compute()
	settled = true

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.add(key, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the estimated bytes currently held.
func (c *Cache[K, V]) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats is a point-in-time summary of the cache's counters, for status
// endpoints and tests that should not have to parse an obs snapshot.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced"`
}

// Stats reads the current summary. Counter values are zero when no registry
// is attached (the counters live on the registry).
func (c *Cache[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
		Hits:      c.obs.Counter(c.name + ".hits").Value(),
		Misses:    c.obs.Counter(c.name + ".misses").Value(),
		Evictions: c.obs.Counter(c.name + ".evictions").Value(),
		Coalesced: c.obs.Counter(c.name + ".coalesced").Value(),
	}
}
