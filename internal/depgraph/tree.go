package depgraph

import (
	"fmt"

	"universalnet/internal/topology"
)

// Dependency-tree construction (Lemma 3.10).
//
// The lemma needs, for each partition torus 𝒯_j of side p = 2a and each
// processor P_i ∈ 𝒯_j, a binary tree in Γ_{G₀} rooted at (P_i, t − D) whose
// leaves are exactly 𝒯_j × {t}, of size O(a²) and depth D = O(a).
//
// We follow the paper's recursive scheme: translate block coordinates so the
// root sits at relative (0,0) (the block is a torus, so any processor can be
// the root); split the relative coordinate rectangle into four quadrants;
// send staggered, constant-speed, dimension-ordered paths from the root to a
// center of each quadrant; then recurse inside each quadrant with a fresh
// per-level time budget. Constant speed plus staggered spawn times keeps
// same-level paths from colliding in (processor, time) space; a small
// deterministic search over spawn orders and X-Y/Y-X route orders resolves
// the remaining target-chain collisions, and the builder verifies
// disjointness globally.

// levelDims returns the nominal square side at each recursion level:
// p, ⌈p/2⌉, …, 1 (the last entry is 1).
func levelDims(p int) []int {
	dims := []int{p}
	for dims[len(dims)-1] > 1 {
		w := dims[len(dims)-1]
		dims = append(dims, (w+1)/2)
	}
	return dims
}

// levelBudget returns the time budget of recursion level l for block side p:
// enough for the worst-case in-rectangle distance plus the spawn stagger.
func levelBudget(w int) int { return 2*(w-1) + 4 }

// TreeDepth returns D(p), the uniform depth of every dependency tree built
// for a block of side p: the sum of the per-level budgets. D(p) = O(p).
func TreeDepth(p int) int {
	d := 0
	dims := levelDims(p)
	for _, w := range dims[:len(dims)-1] {
		d += levelBudget(w)
	}
	return d
}

// treeBuilder carries the construction state.
type treeBuilder struct {
	block    *topology.Block
	p        int // block side
	rootDX   int // root block-coordinates
	rootDY   int
	tEnd     int
	parent   map[Node]Node
	childCnt map[Node]int
	occupied map[Node]bool
	dims     []int
}

// vertexAt translates relative coordinates (rx, ry) — relative to the root,
// wrapping around the block torus — into the global vertex index.
func (b *treeBuilder) vertexAt(rx, ry int) int {
	dx := (b.rootDX + rx) % b.p
	dy := (b.rootDY + ry) % b.p
	return b.block.Index(dx, dy)
}

// addChild links child under parent, enforcing uniqueness and binary
// out-degree. The parent must already exist (or be the root).
func (b *treeBuilder) addChild(parent, child Node) error {
	if b.occupied[child] {
		return fmt.Errorf("depgraph: node %v already in tree", child)
	}
	if !b.occupied[parent] {
		return fmt.Errorf("depgraph: parent %v missing", parent)
	}
	if b.childCnt[parent] >= 2 {
		return fmt.Errorf("depgraph: parent %v already binary", parent)
	}
	b.parent[child] = parent
	b.childCnt[parent]++
	b.occupied[child] = true
	return nil
}

// rect is a sub-rectangle of the relative coordinate space.
type rect struct{ x0, y0, w, h int }

func (r rect) contains(x, y int) bool {
	return x >= r.x0 && x < r.x0+r.w && y >= r.y0 && y < r.y0+r.h
}

func (r rect) center() (int, int) {
	return r.x0 + (r.w-1)/2, r.y0 + (r.h-1)/2
}

// quadrants splits r into up to four non-empty sub-rectangles.
func (r rect) quadrants() []rect {
	w2 := (r.w + 1) / 2
	h2 := (r.h + 1) / 2
	var out []rect
	for _, q := range []rect{
		{r.x0, r.y0, w2, h2},
		{r.x0, r.y0 + h2, w2, r.h - h2},
		{r.x0 + w2, r.y0, r.w - w2, h2},
		{r.x0 + w2, r.y0 + h2, r.w - w2, r.h - h2},
	} {
		if q.w > 0 && q.h > 0 {
			out = append(out, q)
		}
	}
	return out
}

// route returns the vertex sequence (exclusive of the start) of a monotone
// dimension-ordered walk from (x0,y0) to (x1,y1): X first when xFirst.
func route(x0, y0, x1, y1 int, xFirst bool) [][2]int {
	var cells [][2]int
	step := func(a, b int) int {
		if b > a {
			return a + 1
		}
		return a - 1
	}
	x, y := x0, y0
	if xFirst {
		for x != x1 {
			x = step(x, x1)
			cells = append(cells, [2]int{x, y})
		}
		for y != y1 {
			y = step(y, y1)
			cells = append(cells, [2]int{x, y})
		}
	} else {
		for y != y1 {
			y = step(y, y1)
			cells = append(cells, [2]int{x, y})
		}
		for x != x1 {
			x = step(x, x1)
			cells = append(cells, [2]int{x, y})
		}
	}
	return cells
}

// BuildDependencyTree constructs the Lemma 3.10 tree for the block
// containing rootVertex, rooted at (rootVertex, tEnd − TreeDepth(p)), with
// leaves exactly block × {tEnd}. tEnd must be at least TreeDepth(p).
func BuildDependencyTree(g0 *topology.G0, rootVertex, tEnd int) (*Tree, error) {
	bi := topology.BlockOf(g0.Blocks, rootVertex)
	if bi < 0 {
		return nil, fmt.Errorf("depgraph: vertex %d in no block", rootVertex)
	}
	block := &g0.Blocks[bi]
	p := block.A
	depth := TreeDepth(p)
	if tEnd < depth {
		return nil, fmt.Errorf("depgraph: tEnd=%d below tree depth %d", tEnd, depth)
	}
	rdx, rdy := block.Rel(rootVertex)
	b := &treeBuilder{
		block:    block,
		p:        p,
		rootDX:   rdx,
		rootDY:   rdy,
		tEnd:     tEnd,
		parent:   make(map[Node]Node),
		childCnt: make(map[Node]int),
		occupied: make(map[Node]bool),
		dims:     levelDims(p),
	}
	root := Node{P: rootVertex, T: tEnd - depth}
	b.occupied[root] = true
	if err := b.recurse(rect{0, 0, p, p}, 0, 0, 0, root.T); err != nil {
		return nil, err
	}
	return &Tree{Root: root, Parent: b.parent}, nil
}

// chain extends a self-chain of processor (rx,ry) from time t0+1 to t1.
func (b *treeBuilder) chain(rx, ry, t0, t1 int) error {
	v := b.vertexAt(rx, ry)
	for t := t0 + 1; t <= t1; t++ {
		if err := b.addChild(Node{P: v, T: t - 1}, Node{P: v, T: t}); err != nil {
			return err
		}
	}
	return nil
}

// recurse builds the subtree for rectangle r, whose sub-root sits at
// relative (rx, ry) at time t (the node (vertexAt(rx,ry), t) already exists).
func (b *treeBuilder) recurse(r rect, rx, ry, level, t int) error {
	if r.w == 1 && r.h == 1 {
		// Pure padding down to the common leaf time.
		return b.chain(rx, ry, t, b.tEnd)
	}
	if level >= len(b.dims)-1 {
		return fmt.Errorf("depgraph: rectangle %+v not reduced at final level", r)
	}
	deadline := t + levelBudget(b.dims[level])

	quads := r.quadrants()
	targets := make([]treeTarget, 0, len(quads))
	for _, q := range quads {
		tg := treeTarget{q: q}
		if q.contains(rx, ry) {
			tg.tx, tg.ty, tg.isRoot = rx, ry, true
		} else {
			tg.tx, tg.ty = q.center()
		}
		targets = append(targets, tg)
	}

	// Deterministic search over spawn orders and per-path route orders for a
	// collision-free plan.
	perms := permutations(len(targets))
	committed := false
	for _, perm := range perms {
		for mask := 0; mask < 1<<len(targets); mask++ {
			if plan, ok := b.tryPlan(targets, perm, mask, rx, ry, t, deadline); ok {
				if err := b.commitPlan(plan); err != nil {
					return err
				}
				committed = true
				break
			}
		}
		if committed {
			break
		}
	}
	if !committed {
		return fmt.Errorf("depgraph: no collision-free plan for rect %+v at level %d", r, level)
	}
	for _, tg := range targets {
		if err := b.recurse(tg.q, tg.tx, tg.ty, level+1, deadline); err != nil {
			return err
		}
	}
	return nil
}

// planEdge is one parent→child link of a committed plan.
type planEdge struct{ parent, child Node }

// treeTarget describes one quadrant of a recursion step and its sub-root.
type treeTarget struct {
	q      rect
	tx, ty int
	isRoot bool // sub-root equals the current root
}

// tryPlan simulates one (spawn order, route mask) option and returns the
// edges if they are collision-free and within budget.
func (b *treeBuilder) tryPlan(targets []treeTarget, perm []int, mask int, rx, ry, t, deadline int) ([]planEdge, bool) {
	var edges []planEdge
	local := make(map[Node]bool)
	localCnt := make(map[Node]int)
	rootV := b.vertexAt(rx, ry)

	place := func(parent, child Node) bool {
		if b.occupied[child] || local[child] {
			return false
		}
		if b.childCnt[parent]+localCnt[parent] >= 2 {
			return false
		}
		if !b.occupied[parent] && !local[parent] {
			return false
		}
		local[child] = true
		localCnt[parent]++
		edges = append(edges, planEdge{parent, child})
		return true
	}

	// Spawn slots: paths (non-root targets) fork off the root chain at
	// consecutive times; the chain itself must exist long enough.
	nPaths := 0
	for _, tg := range targets {
		if !tg.isRoot {
			nPaths++
		}
	}
	// Root chain cells (rootV, t+1 .. t+nPaths).
	for k := 1; k <= nPaths; k++ {
		if t+k > deadline {
			return nil, false
		}
		if !place(Node{P: rootV, T: t + k - 1}, Node{P: rootV, T: t + k}) {
			return nil, false
		}
	}
	slot := 0
	for _, ti := range perm {
		tg := targets[ti]
		if tg.isRoot {
			continue
		}
		slot++
		xFirst := mask&(1<<ti) == 0
		cells := route(rx, ry, tg.tx, tg.ty, xFirst)
		// Fork from chain node (rootV, t+slot−1); cells at t+slot−1+j.
		prev := Node{P: rootV, T: t + slot - 1}
		tm := t + slot - 1
		for _, c := range cells {
			tm++
			if tm > deadline {
				return nil, false
			}
			nd := Node{P: b.vertexAt(c[0], c[1]), T: tm}
			if !place(prev, nd) {
				return nil, false
			}
			prev = nd
		}
		// Pad at the target until the deadline.
		tv := b.vertexAt(tg.tx, tg.ty)
		for tt := tm + 1; tt <= deadline; tt++ {
			nd := Node{P: tv, T: tt}
			if !place(prev, nd) {
				return nil, false
			}
			prev = nd
		}
	}
	// Root-quadrant continuation: extend the root chain to the deadline.
	for tt := t + nPaths + 1; tt <= deadline; tt++ {
		if !place(Node{P: rootV, T: tt - 1}, Node{P: rootV, T: tt}) {
			return nil, false
		}
	}
	return edges, true
}

// commitPlan installs the edges of a successful plan.
func (b *treeBuilder) commitPlan(edges []planEdge) error {
	for _, e := range edges {
		if err := b.addChild(e.parent, e.child); err != nil {
			return err
		}
	}
	return nil
}

// permutations returns all permutations of 0..n-1 (n ≤ 4 here).
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				rec(append(cur, i), used)
				used[i] = false
			}
		}
	}
	rec(nil, make([]bool, n))
	return out
}
