package depgraph

import (
	"math/rand"
	"testing"

	"universalnet/internal/topology"
)

func topologyRandSource() *rand.Rand { return rand.New(rand.NewSource(55)) }

func TestPredecessorsSuccessors(t *testing.T) {
	g, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	preds := Predecessors(g, Node{P: 0, T: 3})
	if len(preds) != 3 {
		t.Fatalf("preds = %v", preds)
	}
	for _, p := range preds {
		if p.T != 2 {
			t.Errorf("pred %v at wrong time", p)
		}
	}
	if got := Predecessors(g, Node{P: 0, T: 0}); got != nil {
		t.Errorf("t=0 has preds %v", got)
	}
	succs := Successors(g, Node{P: 2, T: 1}, 10)
	if len(succs) != 3 {
		t.Errorf("succs = %v", succs)
	}
	if got := Successors(g, Node{P: 2, T: 10}, 10); got != nil {
		t.Errorf("horizon exceeded: %v", got)
	}
}

func TestIsEdge(t *testing.T) {
	g, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEdge(g, Node{0, 0}, Node{0, 1}) {
		t.Error("self edge missing")
	}
	if !IsEdge(g, Node{0, 0}, Node{1, 1}) {
		t.Error("neighbor edge missing")
	}
	if IsEdge(g, Node{0, 0}, Node{3, 1}) {
		t.Error("non-neighbor edge accepted")
	}
	if IsEdge(g, Node{0, 0}, Node{0, 2}) {
		t.Error("time jump accepted")
	}
	if IsEdge(g, Node{0, 1}, Node{1, 0}) {
		t.Error("backward edge accepted")
	}
}

func TestReaches(t *testing.T) {
	g, err := topology.Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	if !Reaches(g, Node{0, 0}, Node{3, 3}) {
		t.Error("distance-3 in 3 steps should reach")
	}
	if Reaches(g, Node{0, 0}, Node{5, 3}) {
		t.Error("distance-5 in 3 steps should not reach")
	}
	if !Reaches(g, Node{0, 0}, Node{0, 0}) {
		t.Error("reflexive reach failed")
	}
	if Reaches(g, Node{0, 5}, Node{0, 3}) {
		t.Error("backward reach accepted")
	}
	// Staying put across time.
	if !Reaches(g, Node{7, 1}, Node{7, 9}) {
		t.Error("self chain reach failed")
	}
}

func TestLevelDimsAndDepth(t *testing.T) {
	dims := levelDims(8)
	want := []int{8, 4, 2, 1}
	if len(dims) != len(want) {
		t.Fatalf("dims = %v", dims)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("dims = %v, want %v", dims, want)
		}
	}
	// Depth = Σ 2(w−1)+4 over w ∈ {8,4,2} = 18+10+6 = 34.
	if d := TreeDepth(8); d != 34 {
		t.Errorf("TreeDepth(8) = %d, want 34", d)
	}
	if d := TreeDepth(4); d != 16 {
		t.Errorf("TreeDepth(4) = %d, want 16", d)
	}
	// Depth is O(p): check linear-ish growth.
	if TreeDepth(16) > 8*16 {
		t.Errorf("TreeDepth(16) = %d too large", TreeDepth(16))
	}
}

func TestRouteMonotone(t *testing.T) {
	cells := route(0, 0, 2, 3, true)
	if len(cells) != 5 {
		t.Fatalf("route length %d, want 5", len(cells))
	}
	// X first: (1,0),(2,0),(2,1),(2,2),(2,3).
	if cells[0] != [2]int{1, 0} || cells[4] != [2]int{2, 3} {
		t.Errorf("route = %v", cells)
	}
	cells = route(2, 3, 0, 0, false)
	if len(cells) != 5 || cells[len(cells)-1] != [2]int{0, 0} {
		t.Errorf("reverse route = %v", cells)
	}
	if got := route(1, 1, 1, 1, true); len(got) != 0 {
		t.Errorf("empty route = %v", got)
	}
}

func buildTestG0(t *testing.T, n, blockSide int) *topology.G0 {
	t.Helper()
	g0, err := topology.BuildG0WithBlockSide(n, blockSide, 99)
	if err != nil {
		t.Fatal(err)
	}
	return g0
}

func TestBuildDependencyTreeSmall(t *testing.T) {
	g0 := buildTestG0(t, 144, 4) // 4×4 blocks, h=9
	p := g0.BlockSide
	depth := TreeDepth(p)
	root := g0.Blocks[0].Vertices[5]
	tree, err := BuildDependencyTree(g0, root, depth)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.P != root || tree.Root.T != 0 {
		t.Errorf("root = %v", tree.Root)
	}
	if err := tree.Validate(g0.Multitorus, 2); err != nil {
		t.Error(err)
	}
	if err := tree.LeavesCover(g0.Blocks[0].Vertices, depth); err != nil {
		t.Error(err)
	}
	if tree.Depth() != depth {
		t.Errorf("depth = %d, want %d", tree.Depth(), depth)
	}
}

func TestBuildDependencyTreeEveryRoot(t *testing.T) {
	g0 := buildTestG0(t, 144, 4)
	p := g0.BlockSide
	depth := TreeDepth(p)
	// Every vertex of every block can serve as root (torus symmetry).
	for bi := range g0.Blocks {
		for _, v := range g0.Blocks[bi].Vertices {
			tree, err := BuildDependencyTree(g0, v, depth)
			if err != nil {
				t.Fatalf("block %d root %d: %v", bi, v, err)
			}
			if err := tree.Validate(g0.Multitorus, 2); err != nil {
				t.Fatalf("block %d root %d: %v", bi, v, err)
			}
			if err := tree.LeavesCover(g0.Blocks[bi].Vertices, depth); err != nil {
				t.Fatalf("block %d root %d: %v", bi, v, err)
			}
		}
	}
}

func TestBuildDependencyTreeSizeBound(t *testing.T) {
	// Lemma 3.10 asserts size O(a²) (paper constant 48a²; our recursive
	// construction is looser by a constant — we assert ≤ 80·a² and record
	// the measured constant in EXPERIMENTS.md).
	for _, blockSide := range []int{4, 6, 8} {
		n := topology.NextValidG0Size(4*blockSide*blockSide, blockSide)
		g0 := buildTestG0(t, n, blockSide)
		a := g0.A
		depth := TreeDepth(blockSide)
		root := g0.Blocks[0].Vertices[0]
		tree, err := BuildDependencyTree(g0, root, depth)
		if err != nil {
			t.Fatalf("blockSide %d: %v", blockSide, err)
		}
		bound := 80 * a * a
		if tree.Size() > bound {
			t.Errorf("blockSide %d: size %d > %d", blockSide, tree.Size(), bound)
		}
		if tree.Depth() > 10*a+20 {
			t.Errorf("blockSide %d: depth %d not O(a)", blockSide, tree.Depth())
		}
	}
}

func TestBuildDependencyTreeLaterTEnd(t *testing.T) {
	g0 := buildTestG0(t, 144, 4)
	depth := TreeDepth(g0.BlockSide)
	tEnd := depth + 7
	root := g0.Blocks[2].Vertices[3]
	tree, err := BuildDependencyTree(g0, root, tEnd)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.T != 7 {
		t.Errorf("root time = %d, want 7", tree.Root.T)
	}
	if err := tree.LeavesCover(g0.Blocks[2].Vertices, tEnd); err != nil {
		t.Error(err)
	}
}

func TestBuildDependencyTreeErrors(t *testing.T) {
	g0 := buildTestG0(t, 144, 4)
	if _, err := BuildDependencyTree(g0, 0, 1); err == nil {
		t.Error("tEnd below depth accepted")
	}
}

func TestTreeAccessors(t *testing.T) {
	g0 := buildTestG0(t, 144, 4)
	depth := TreeDepth(g0.BlockSide)
	tree, err := BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	if err != nil {
		t.Fatal(err)
	}
	nodes := tree.Nodes()
	if len(nodes) != tree.Size() {
		t.Errorf("Nodes()=%d Size()=%d", len(nodes), tree.Size())
	}
	if nodes[0] != tree.Root {
		t.Errorf("first node %v is not the root %v", nodes[0], tree.Root)
	}
	ch := tree.Children()
	total := 0
	for _, c := range ch {
		total += len(c)
		if len(c) > 2 {
			t.Errorf("node has %d children", len(c))
		}
	}
	if total != tree.Size()-1 {
		t.Errorf("children total %d, want %d", total, tree.Size()-1)
	}
	if len(tree.Leaves()) != 16 {
		t.Errorf("leaves = %d, want 16", len(tree.Leaves()))
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	g0 := buildTestG0(t, 144, 4)
	depth := TreeDepth(g0.BlockSide)
	tree, err := BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	if err != nil {
		t.Fatal(err)
	}
	// Insert an illegal edge: child far away in the graph.
	far := g0.Blocks[len(g0.Blocks)-1].Vertices[0]
	tree.Parent[Node{P: far, T: 1}] = tree.Root
	if err := tree.Validate(g0.Multitorus, 2); err == nil {
		t.Error("illegal Γ edge not caught")
	}
}

func TestPropertyReachesMatchesBFSGroundTruth(t *testing.T) {
	g, err := topology.Torus(36)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth by explicit layer-by-layer expansion in Γ.
	reachableBy := func(from Node, steps int) map[int]bool {
		cur := map[int]bool{from.P: true}
		for s := 0; s < steps; s++ {
			next := make(map[int]bool)
			for v := range cur {
				next[v] = true
				for _, w := range g.Neighbors(v) {
					next[w] = true
				}
			}
			cur = next
		}
		return cur
	}
	for _, steps := range []int{0, 1, 2, 3, 5} {
		from := Node{P: 7, T: 2}
		truth := reachableBy(from, steps)
		for v := 0; v < g.N(); v++ {
			want := truth[v]
			got := Reaches(g, from, Node{P: v, T: 2 + steps})
			if got != want {
				t.Fatalf("steps=%d v=%d: Reaches=%v, ground truth=%v", steps, v, got, want)
			}
		}
	}
}

func TestTreeValidInFullGuestGamma(t *testing.T) {
	// Γ_{G₀} ⊆ Γ_G (the Definition 3.7 note): a dependency tree built in
	// the multitorus also validates against any guest containing G₀.
	g0 := buildTestG0(t, 144, 4)
	rng := topologyRandSource()
	guest, err := g0.SampleGuest(rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	depth := TreeDepth(g0.BlockSide)
	tree, err := BuildDependencyTree(g0, g0.Blocks[1].Vertices[2], depth)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g0.Multitorus, 2); err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(guest, 2); err != nil {
		t.Fatalf("tree invalid in the full guest's Γ: %v", err)
	}
}

// TestTranslateMatchesDirectBuild is the contract the LemmaWeights canonical
// tree cache relies on: BuildDependencyTree's shape depends only on time
// offsets from the root, so translating one build must equal building
// directly at the shifted root time.
func TestTranslateMatchesDirectBuild(t *testing.T) {
	g0 := buildTestG0(t, 144, 4)
	depth := TreeDepth(g0.BlockSide)
	for _, v := range []int{g0.Blocks[0].Vertices[0], g0.Blocks[0].Vertices[5], g0.Blocks[2].Vertices[3]} {
		base, err := BuildDependencyTree(g0, v, depth)
		if err != nil {
			t.Fatal(err)
		}
		for _, dt := range []int{1, 2, 7} {
			direct, err := BuildDependencyTree(g0, v, depth+dt)
			if err != nil {
				t.Fatal(err)
			}
			shifted := Translate(base, dt)
			if shifted.Root != direct.Root {
				t.Fatalf("v=%d dt=%d: root %v, want %v", v, dt, shifted.Root, direct.Root)
			}
			if len(shifted.Parent) != len(direct.Parent) {
				t.Fatalf("v=%d dt=%d: %d nodes, want %d", v, dt, len(shifted.Parent), len(direct.Parent))
			}
			for c, p := range direct.Parent {
				if sp, ok := shifted.Parent[c]; !ok || sp != p {
					t.Fatalf("v=%d dt=%d: node %v parent %v, want %v (present=%v)", v, dt, c, sp, p, ok)
				}
			}
			// Translating back must return to the original, confirming the
			// shift is lossless in both directions.
			back := shifted.Translate(-dt)
			if back.Root != base.Root || len(back.Parent) != len(base.Parent) {
				t.Fatalf("v=%d dt=%d: round-trip mismatch", v, dt)
			}
		}
	}
}
