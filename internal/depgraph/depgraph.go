// Package depgraph implements the dependency graph Γ_G of Definition 3.7 —
// the time-expanded graph whose vertices are (processor, time) pairs — and
// the dependency trees T_{i,t} of Lemma 3.10: binary trees inside Γ_{G₀},
// rooted at one (processor, time) node, whose leaves cover an entire
// partition torus at a single later time step.
package depgraph

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

// Node is a vertex (P, t) of the dependency graph Γ_G.
type Node struct {
	P int // processor index
	T int // guest time step
}

// String renders the Γ vertex as (P_i, t_t).
func (n Node) String() string { return fmt.Sprintf("(P%d,t%d)", n.P, n.T) }

// Predecessors returns the Γ_G-predecessors of (P, t): (P, t−1) and
// (P', t−1) for every neighbor P' of P. Empty for t ≤ 0.
func Predecessors(g *graph.Graph, n Node) []Node {
	if n.T <= 0 {
		return nil
	}
	out := make([]Node, 0, g.Degree(n.P)+1)
	out = append(out, Node{P: n.P, T: n.T - 1})
	for _, w := range g.Neighbors(n.P) {
		out = append(out, Node{P: w, T: n.T - 1})
	}
	return out
}

// Successors returns the Γ_G-successors of (P, t) within horizon T:
// (P, t+1) and neighbors at t+1.
func Successors(g *graph.Graph, n Node, horizon int) []Node {
	if n.T >= horizon {
		return nil
	}
	out := make([]Node, 0, g.Degree(n.P)+1)
	out = append(out, Node{P: n.P, T: n.T + 1})
	for _, w := range g.Neighbors(n.P) {
		out = append(out, Node{P: w, T: n.T + 1})
	}
	return out
}

// IsEdge reports whether (from → to) is an edge of Γ_G.
func IsEdge(g *graph.Graph, from, to Node) bool {
	if to.T != from.T+1 {
		return false
	}
	return from.P == to.P || g.HasEdge(from.P, to.P)
}

// Reaches reports whether (P,t) →^i (P',t+i) holds in Γ_G, i.e. whether a
// directed path exists. Because staying put is always allowed, this is
// equivalent to dist_G(P, P') ≤ t' − t.
func Reaches(g *graph.Graph, from, to Node) bool {
	if to.T < from.T {
		return false
	}
	d := g.BFS(from.P)[to.P]
	return d >= 0 && d <= to.T-from.T
}

// Tree is a directed tree inside a dependency graph: every non-root node has
// exactly one parent, and edges go one time step forward.
type Tree struct {
	Root   Node
	Parent map[Node]Node
}

// Size returns the number of nodes (root included).
func (tr *Tree) Size() int { return len(tr.Parent) + 1 }

// Translate returns a copy of tr shifted dt time steps. The construction of
// BuildDependencyTree depends only on time offsets from the root, so
// Translate(BuildDependencyTree(g0, v, t), dt) equals
// BuildDependencyTree(g0, v, t+dt) — a cheap way to reuse one build across
// root times (verified by TestTranslateMatchesDirectBuild).
func (tr *Tree) Translate(dt int) *Tree {
	out := &Tree{
		Root:   Node{P: tr.Root.P, T: tr.Root.T + dt},
		Parent: make(map[Node]Node, len(tr.Parent)),
	}
	for c, p := range tr.Parent {
		out.Parent[Node{P: c.P, T: c.T + dt}] = Node{P: p.P, T: p.T + dt}
	}
	return out
}

// Translate is the free-function form of Tree.Translate.
func Translate(tr *Tree, dt int) *Tree { return tr.Translate(dt) }

// Nodes returns all tree nodes in deterministic (time, processor) order.
func (tr *Tree) Nodes() []Node {
	out := make([]Node, 0, tr.Size())
	out = append(out, tr.Root)
	for n := range tr.Parent {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].P < out[j].P
	})
	return out
}

// Children returns a map node → children (each sorted by processor).
func (tr *Tree) Children() map[Node][]Node {
	ch := make(map[Node][]Node, tr.Size())
	for n, p := range tr.Parent {
		ch[p] = append(ch[p], n)
	}
	for _, c := range ch {
		sort.Slice(c, func(i, j int) bool { return c[i].P < c[j].P })
	}
	return ch
}

// Leaves returns the nodes without children, sorted.
func (tr *Tree) Leaves() []Node {
	ch := tr.Children()
	var out []Node
	for _, n := range tr.Nodes() {
		if len(ch[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Depth returns the maximum root-to-node distance (in time steps).
func (tr *Tree) Depth() int {
	max := 0
	for n := range tr.Parent {
		if d := n.T - tr.Root.T; d > max {
			max = d
		}
	}
	return max
}

// Validate checks the structural invariants of a dependency tree inside
// Γ_g: every parent edge is a Γ-edge, every non-root node has its parent in
// the tree, the root has no parent, out-degree is at most maxOut (2 for the
// binary trees of Lemma 3.10), and node (P,t) pairs are unique by
// construction of the map.
func (tr *Tree) Validate(g *graph.Graph, maxOut int) error {
	if _, hasParent := tr.Parent[tr.Root]; hasParent {
		return fmt.Errorf("depgraph: root %v has a parent", tr.Root)
	}
	outdeg := make(map[Node]int)
	for n, p := range tr.Parent {
		if !IsEdge(g, p, n) {
			return fmt.Errorf("depgraph: %v → %v is not a Γ edge", p, n)
		}
		if p != tr.Root {
			if _, ok := tr.Parent[p]; !ok {
				return fmt.Errorf("depgraph: parent %v of %v not in tree", p, n)
			}
		}
		outdeg[p]++
		if outdeg[p] > maxOut {
			return fmt.Errorf("depgraph: node %v exceeds out-degree %d", p, maxOut)
		}
	}
	// Acyclicity follows from the strictly increasing time coordinate.
	return nil
}

// LeavesCover checks that the leaves are exactly {(v, tEnd) : v ∈ vertices}.
func (tr *Tree) LeavesCover(vertices []int, tEnd int) error {
	want := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		want[v] = true
	}
	leaves := tr.Leaves()
	seen := make(map[int]bool)
	for _, l := range leaves {
		if l.T != tEnd {
			return fmt.Errorf("depgraph: leaf %v not at tEnd=%d", l, tEnd)
		}
		if !want[l.P] {
			return fmt.Errorf("depgraph: leaf %v outside the target vertex set", l)
		}
		if seen[l.P] {
			return fmt.Errorf("depgraph: duplicate leaf for processor %d", l.P)
		}
		seen[l.P] = true
	}
	if len(seen) != len(want) {
		return fmt.Errorf("depgraph: %d of %d target vertices covered", len(seen), len(want))
	}
	return nil
}
