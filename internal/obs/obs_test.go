package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: the disabled path — nil registry, nil instruments, nil
// spans — must be a silent no-op everywhere; hot paths rely on it.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", []int64{1}) != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Gauge("x").SetMax(2)
	r.Histogram("x", nil).Observe(5)
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil snapshot not Empty")
	}
	r.Merge(&Snapshot{Counters: map[string]int64{"a": 1}})
	sp := r.StartSpan("s", KV("k", 1))
	if sp != nil {
		t.Fatal("nil registry started a span")
	}
	sp.Annotate("k", 2)
	sp.End()
	if r.Now().IsZero() {
		t.Fatal("nil registry Now is zero")
	}
	if got := r.SetClock(nil); got != nil {
		t.Fatal("nil SetClock returned non-nil")
	}
}

// TestSpanDisabledWithoutSink: a live registry with no sink must still
// return nil spans — the one-nil-check contract.
func TestSpanDisabledWithoutSink(t *testing.T) {
	r := New()
	if sp := r.StartSpan("s"); sp != nil {
		t.Fatal("span started without a sink")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("events") != c {
		t.Fatal("counter not memoized by name")
	}

	g := r.Gauge("peak")
	g.SetMax(4)
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatalf("gauge SetMax = %d, want 4", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Fatalf("gauge Set = %d, want 1", g.Value())
	}

	h := r.Histogram("lat", []int64{8, 2, 4}) // unsorted on purpose
	for _, v := range []int64{1, 2, 3, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 115 {
		t.Fatalf("histogram count/sum = %d/%d, want 5/115", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if want := []int64{2, 4, 8}; len(hs.Bounds) != 3 || hs.Bounds[0] != want[0] || hs.Bounds[2] != want[2] {
		t.Fatalf("bounds = %v, want %v", hs.Bounds, want)
	}
	// ≤2: {1,2}; ≤4: {3}; ≤8: {}; overflow: {9,100}.
	if want := []int64{2, 1, 0, 2}; len(hs.Counts) != 4 || hs.Counts[0] != 2 || hs.Counts[1] != 1 || hs.Counts[3] != 2 {
		t.Fatalf("bucket counts = %v, want %v", hs.Counts, want)
	}
}

// TestSnapshotDeterministicJSON: identical work recorded in any interleaving
// must serialize to identical bytes — the byte-identical-rerun contract.
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func(parallel bool) []byte {
		r := New()
		work := func(k int64) {
			r.Counter("c").Add(k)
			r.Gauge("g").SetMax(k)
			r.Histogram("h", []int64{4, 16}).Observe(k)
		}
		if parallel {
			var wg sync.WaitGroup
			for k := int64(1); k <= 32; k++ {
				wg.Add(1)
				go func(k int64) { defer wg.Done(); work(k) }(k)
			}
			wg.Wait()
		} else {
			for k := int64(32); k >= 1; k-- { // reversed order, same multiset
				work(k)
			}
		}
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq, par := build(false), build(true)
	if !bytes.Equal(seq, par) {
		t.Fatalf("snapshot JSON differs:\nseq: %s\npar: %s", seq, par)
	}
}

func TestSnapshotEqualAndDiff(t *testing.T) {
	a, b := New(), New()
	a.Counter("x").Add(1)
	b.Counter("x").Add(1)
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Fatal("equal registries compare unequal")
	}
	b.Counter("x").Inc()
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Equal(sb) {
		t.Fatal("unequal registries compare equal")
	}
	if d := sa.Diff(sb); !strings.Contains(d, "counter x") {
		t.Fatalf("Diff = %q, want it to name counter x", d)
	}
	var empty *Snapshot
	if !empty.Equal(&Snapshot{}) {
		t.Fatal("nil and zero snapshots should be equal")
	}
}

func TestMerge(t *testing.T) {
	child := New()
	child.Counter("c").Add(5)
	child.Gauge("g").SetMax(7)
	child.Histogram("h", []int64{10}).Observe(3)

	parent := New()
	parent.Counter("c").Add(1)
	parent.Gauge("g").SetMax(2)
	parent.Merge(child.Snapshot())
	parent.Merge(nil) // no-op

	s := parent.Snapshot()
	if s.Counters["c"] != 6 {
		t.Errorf("merged counter = %d, want 6", s.Counters["c"])
	}
	if s.Gauges["g"] != 7 {
		t.Errorf("merged gauge = %d, want 7", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 1 || h.Sum != 3 || h.Counts[0] != 1 {
		t.Errorf("merged histogram = %+v", h)
	}

	// Mismatched bounds must be skipped, not mixed.
	odd := &Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []int64{1, 2}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 1},
	}}
	parent.Merge(odd)
	if got := parent.Snapshot().Histograms["h"].Count; got != 1 {
		t.Errorf("mismatched-bounds merge altered histogram: count = %d", got)
	}
}

func TestSpansEmitJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceSink(&buf)
	clock := &FakeClock{T: time.Unix(1000, 0), Step: time.Millisecond}
	r := New().SetClock(clock).SetTrace(sink)

	sp := r.StartSpan("outer", KV("id", "E1"))
	sp.Annotate("rows", 4)
	inner := r.StartSpan("inner")
	inner.End()
	sp.End()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), buf.String())
	}
	var evs []SpanEvent
	for _, ln := range lines {
		var ev SpanEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad JSONL %q: %v", ln, err)
		}
		evs = append(evs, ev)
	}
	// inner ends first.
	if evs[0].Span != "inner" || evs[1].Span != "outer" {
		t.Fatalf("span order = %s,%s", evs[0].Span, evs[1].Span)
	}
	if evs[1].Attrs["id"] != "E1" || evs[1].Attrs["rows"] != float64(4) {
		t.Fatalf("outer attrs = %v", evs[1].Attrs)
	}
	if evs[1].DurUS <= 0 || evs[0].DurUS <= 0 {
		t.Fatalf("durations not positive: %+v", evs)
	}
	if evs[0].ID == evs[1].ID {
		t.Fatal("span ids collide")
	}
}

func TestFakeClockAndRegistryClock(t *testing.T) {
	clock := &FakeClock{T: time.Unix(50, 0), Step: time.Second}
	r := New().SetClock(clock)
	t1, t2 := r.Now(), r.Now()
	if got := t2.Sub(t1); got != time.Second {
		t.Fatalf("fake clock advanced %v, want 1s", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a registry")
	}
	r := New()
	ctx := NewContext(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("registry lost in context round-trip")
	}
	if got := NewContext(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil registry stored in context")
	}
}

// TestConcurrencySafety exercises every instrument from many goroutines so
// `go test -race ./internal/obs` proves the layer race-free.
func TestConcurrencySafety(t *testing.T) {
	var buf bytes.Buffer
	r := New().SetTrace(NewTraceSink(&buf))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(w*1000 + i))
				r.Histogram("h", []int64{64, 512}).Observe(int64(i))
				if i%50 == 0 {
					sp := r.StartSpan("w")
					sp.End()
				}
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
}
