package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceSink serializes span events as JSON Lines — one object per completed
// span — onto a writer. Writes are mutex-serialized, so one sink may be
// shared by every registry of a parallel run. Spans carry wall-clock times
// and are therefore a diagnostic channel, deliberately separate from the
// deterministic Snapshot.
type TraceSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
}

// NewTraceSink wraps w in a buffered JSONL encoder. If w is also an
// io.Closer (a file), Close closes it after flushing.
func NewTraceSink(w io.Writer) *TraceSink {
	bw := bufio.NewWriter(w)
	s := &TraceSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// SpanEvent is the JSONL record of one completed span. Trace, SpanID, and
// Parent (hex, see ids.go) are set only for spans that belong to a
// distributed trace; the flat run-profiling spans of experiments predate
// them and omit all three.
type SpanEvent struct {
	Span    string         `json:"span"`
	ID      int64          `json:"id"`
	Trace   string         `json:"trace,omitempty"`
	SpanID  string         `json:"span_id,omitempty"`
	Parent  string         `json:"parent,omitempty"`
	StartUS int64          `json:"start_us"` // µs since Unix epoch
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Emit writes one externally assembled span event. The telemetry layers use
// it to emit span trees whose IDs and timings were collected without a live
// Span (per-stage request telemetry). Nil-safe.
func (s *TraceSink) Emit(ev SpanEvent) { s.emit(ev) }

func (s *TraceSink) emit(ev SpanEvent) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev) // diagnostics must never fail the run
}

// Flush drains the buffer to the underlying writer.
func (s *TraceSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close flushes and, when the sink owns a closable writer, closes it.
func (s *TraceSink) Close() error {
	if s == nil {
		return nil
	}
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed region of a run. A nil span (tracing disabled) no-ops.
type Span struct {
	r      *Registry
	sink   *TraceSink
	name   string
	id     int64
	start  time.Time
	attrs  map[string]any
	trace  TraceID
	spanID SpanID
	parent SpanID
}

// Context returns the span's identity for propagation (zero when the span
// carries no trace — plain StartSpan spans). Nil-safe.
func (sp *Span) Context() SpanContext {
	if sp == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: sp.trace, Span: sp.spanID}
}

// StartSpan opens a span when a trace sink is attached; otherwise it returns
// nil, making disabled tracing a single nil-check at both ends.
func (r *Registry) StartSpan(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	sink := r.sink
	clock := r.clock
	r.mu.Unlock()
	if sink == nil {
		return nil
	}
	sp := &Span{
		r:     r,
		sink:  sink,
		name:  name,
		id:    r.spanSeq.Add(1),
		start: clock.Now(),
	}
	for _, a := range attrs {
		sp.Annotate(a.Key, a.Value)
	}
	return sp
}

// StartSpanCtx opens a child span of the span context carried by ctx (a
// fresh root when ctx carries none) and returns ctx re-wrapped with the new
// span's context, so nested calls build a joinable tree. With no sink
// attached it returns ctx unchanged and a nil span — zero allocations, the
// disabled-tracing contract the alloc pin enforces.
func (r *Registry) StartSpanCtx(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	r.mu.Lock()
	sink := r.sink
	clock := r.clock
	ids := r.ids
	r.mu.Unlock()
	if sink == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	trace := parent.Trace
	if trace.IsZero() {
		trace = ids.TraceID()
	}
	sp := &Span{
		r:      r,
		sink:   sink,
		name:   name,
		id:     r.spanSeq.Add(1),
		start:  clock.Now(),
		trace:  trace,
		spanID: ids.SpanID(),
		parent: parent.Span,
	}
	for _, a := range attrs {
		sp.Annotate(a.Key, a.Value)
	}
	return ContextWithSpan(ctx, SpanContext{Trace: trace, Span: sp.spanID}), sp
}

// Annotate attaches (or overwrites) one attribute. Nil-safe.
func (sp *Span) Annotate(key string, value any) {
	if sp == nil {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]any, 4)
	}
	sp.attrs[key] = value
}

// End closes the span and emits its JSONL event. Nil-safe.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := sp.r.Now()
	ev := SpanEvent{
		Span:    sp.name,
		ID:      sp.id,
		StartUS: sp.start.UnixMicro(),
		DurUS:   end.Sub(sp.start).Microseconds(),
		Attrs:   sp.attrs,
	}
	if !sp.trace.IsZero() {
		ev.Trace = sp.trace.String()
		ev.SpanID = sp.spanID.String()
		if sp.parent != 0 {
			ev.Parent = sp.parent.String()
		}
	}
	sp.sink.emit(ev)
}

// ctxKey is the private context key for registry plumbing.
type ctxKey struct{}

// NewContext returns ctx carrying r, so deep call stacks (experiment bodies,
// protocol builders) can pick up the run's registry without signature churn.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the registry from ctx (nil when absent — the no-op
// default).
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
