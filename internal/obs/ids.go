package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// This file adds distributed-trace identity to the span layer: 128-bit
// trace IDs, 64-bit span IDs, a SplitMix64-backed IDSource (deterministic
// under a fixed seed, which is what tests pin), context carriage for the
// current span, and the wire format of the X-Uninet-Trace header that
// carries a trace across cluster forwards. IDs are identity only — they
// never enter a deterministic Snapshot, matching the rule that wall-clock
// (and now identity) flows exclusively through the span channel.

// TraceID identifies one end-to-end request across every node it touches.
// The zero value means "no trace".
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether t is the absent trace.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the canonical 32-hex-digit form.
func (t TraceID) String() string {
	return fmt.Sprintf("%016x%016x", t.Hi, t.Lo)
}

// ParseTraceID parses the canonical 32-hex-digit form.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return TraceID{}, fmt.Errorf("obs: trace id %q is not 32 hex digits", s)
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace id %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace id %q: %v", s, err)
	}
	return TraceID{Hi: hi, Lo: lo}, nil
}

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// String renders the canonical 16-hex-digit form.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// ParseSpanID parses the canonical 16-hex-digit form.
func ParseSpanID(s string) (SpanID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("obs: span id %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad span id %q: %v", s, err)
	}
	return SpanID(v), nil
}

// SpanContext is the propagated identity of the current span: the trace it
// belongs to and the span itself (the parent of anything started under it).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a trace at all.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() }

// HeaderValue renders the X-Uninet-Trace wire form: "<trace32>-<span16>",
// or just "<trace32>" when no span is set.
func (sc SpanContext) HeaderValue() string {
	if sc.Span == 0 {
		return sc.Trace.String()
	}
	return sc.Trace.String() + "-" + sc.Span.String()
}

// ParseSpanContext parses the X-Uninet-Trace wire form ("<trace32>" or
// "<trace32>-<span16>"). ok is false for "" and for malformed values —
// propagation must degrade to a fresh trace, never fail a request.
func ParseSpanContext(s string) (sc SpanContext, ok bool) {
	switch len(s) {
	case 32:
		t, err := ParseTraceID(s)
		if err != nil {
			return SpanContext{}, false
		}
		return SpanContext{Trace: t}, true
	case 49:
		if s[32] != '-' {
			return SpanContext{}, false
		}
		t, err := ParseTraceID(s[:32])
		if err != nil {
			return SpanContext{}, false
		}
		sp, err := ParseSpanID(s[33:])
		if err != nil {
			return SpanContext{}, false
		}
		return SpanContext{Trace: t, Span: sp}, true
	}
	return SpanContext{}, false
}

// IDSource generates trace and span IDs from a SplitMix64 stream. A fixed
// seed yields a fixed ID sequence (single-consumer), which is how tests pin
// exact IDs; concurrent consumers draw unique, decorrelated IDs from the
// same atomic stream. The zero value is usable and seeds from zero.
type IDSource struct {
	state atomic.Uint64
}

// mix64 is the SplitMix64 output mixer (Steele et al.).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// NewIDSource returns a source whose stream is a pure function of seed.
func NewIDSource(seed int64) *IDSource {
	s := &IDSource{}
	s.state.Store(mix64(uint64(seed) ^ 0x9E3779B97F4A7C15))
	return s
}

// next draws one nonzero 64-bit value.
func (s *IDSource) next() uint64 {
	for {
		z := mix64(s.state.Add(0x9E3779B97F4A7C15))
		if z != 0 {
			return z
		}
	}
}

// TraceID draws a fresh nonzero 128-bit trace ID. Nil-safe (zero on nil —
// callers without a source cannot start traces).
func (s *IDSource) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return TraceID{Hi: s.next(), Lo: s.next()}
}

// SpanID draws a fresh nonzero span ID. Nil-safe.
func (s *IDSource) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return SpanID(s.next())
}

// processIDSeed decorrelates the default ID streams of registries created in
// one process (and across processes, via the clock).
var processIDSeed atomic.Int64

func defaultIDSeed() int64 {
	return time.Now().UnixNano() ^ processIDSeed.Add(0x9E3779B9)<<17
}

// spanCtxKey is the private context key for span-context propagation.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc as the current span context, so
// spans (and cluster forwards) started below join the same trace.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext extracts the current span context (zero when absent).
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}
