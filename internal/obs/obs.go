// Package obs is the laboratory's zero-dependency instrumentation layer.
// Every internal quantity the paper's proofs reason about — host steps per
// guest step, routing-phase congestion, retries under faults, pebble ops by
// kind — becomes a measured signal: an atomic counter, a monotone gauge, or
// a fixed-bucket histogram registered on a Registry, plus span-based step
// tracing for wall-clock profiling.
//
// Two invariants shape the design:
//
//   - Disabled means free. Every method is safe on a nil receiver and
//     degenerates to (at most) one nil-check, so instrumented hot paths pay
//     nothing when no registry is attached. Instruments are resolved once
//     (outside loops) and then ticked, never looked up per iteration.
//
//   - Snapshots are deterministic. Counters and histograms accumulate
//     commutatively and gauges are monotone maxima (or set-once values), so
//     for a fixed seed the Snapshot of a run's registry is byte-identical
//     regardless of worker count or scheduling — matching the project's
//     byte-identical-rerun contract. Wall-clock time never enters a
//     Snapshot; it flows only through spans (see trace.go), which are an
//     explicitly non-deterministic diagnostic channel.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time for the instrumentation layer, so runners and tests
// can inject a deterministic clock while production uses the system one.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the wall clock.
func SystemClock() Clock { return systemClock{} }

// FakeClock is a deterministic test clock: every Now call advances it by
// Step. The zero value starts at the Unix epoch and never advances.
type FakeClock struct {
	mu   sync.Mutex
	T    time.Time
	Step time.Duration
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.T
	c.T = c.T.Add(c.Step)
	return t
}

// Registry holds the named instruments of one run (typically: one
// experiment, or one runner sweep). A nil *Registry is the no-op default:
// every method short-circuits and returned instruments are nil no-ops.
type Registry struct {
	mu       sync.Mutex
	clock    Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sink     *TraceSink
	ids      *IDSource
	spanSeq  atomic.Int64
}

// New returns an empty registry on the system clock, with a process-unique
// trace/span ID stream (SetIDSeed pins it for tests).
func New() *Registry {
	return &Registry{
		clock:    systemClock{},
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ids:      NewIDSource(defaultIDSeed()),
	}
}

// SetIDSeed replaces the trace/span ID stream with one that is a pure
// function of seed, and returns r, for chaining. Tests use it to make span
// identity deterministic.
func (r *Registry) SetIDSeed(seed int64) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.ids = NewIDSource(seed)
	r.mu.Unlock()
	return r
}

// IDs returns the registry's trace/span ID source (nil on nil registry).
func (r *Registry) IDs() *IDSource {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ids
}

// Sink returns the attached trace sink (nil when tracing is disabled).
func (r *Registry) Sink() *TraceSink {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink
}

// TraceEnabled reports whether a span sink is attached.
func (r *Registry) TraceEnabled() bool { return r.Sink() != nil }

// SetClock injects a clock (nil restores the system clock) and returns r,
// for chaining.
func (r *Registry) SetClock(c Clock) *Registry {
	if r == nil {
		return nil
	}
	if c == nil {
		c = systemClock{}
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
	return r
}

// SetTrace attaches a span sink (nil detaches) and returns r, for chaining.
// With no sink attached StartSpan returns nil immediately.
func (r *Registry) SetTrace(s *TraceSink) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
	return r
}

// Now reads the registry clock; a nil registry reads the system clock.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	return c.Now()
}

// Counter returns the named counter, creating it on first use. Nil registry
// → nil counter (whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registry →
// nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given upper bounds (ascending; an implicit overflow bucket is appended) on
// first use. Later calls ignore bounds and return the existing histogram.
// Nil registry → nil histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotone atomic event count.
type Counter struct {
	v atomic.Int64
}

// Add accumulates n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. Concurrent writers must use SetMax (a
// commutative monotone maximum) to keep snapshots deterministic; plain Set
// is for values written once per run (sizes, configured worker counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if larger (CAS loop). Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts integer observations into fixed buckets: counts[i] tallies
// v ≤ bounds[i] (first matching bound), counts[len(bounds)] is the overflow
// bucket. Sum and Count accompany the buckets, so means survive snapshots.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records v. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed values by
// linear interpolation inside the bucket holding the target rank — the
// standard fixed-bucket estimator. The first bucket interpolates from zero
// (every recorded quantity is a nonnegative count or duration); ranks that
// land in the overflow bucket report the largest bound, a deliberate
// underestimate since the histogram does not know the true maximum.
// Returns 0 with no observations. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileBuckets(h.bounds, counts, h.n.Load(), q)
}

// Quantile is the snapshot form of Histogram.Quantile.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	return quantileBuckets(hs.Bounds, hs.Counts, hs.Count, q)
}

// quantileBuckets is the shared linear-interpolation estimator.
func quantileBuckets(bounds []int64, counts []int64, total int64, q float64) float64 {
	if total <= 0 || len(counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		if cum+float64(c) >= rank {
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			if i >= len(bounds) {
				// Overflow bucket: no upper edge to interpolate toward.
				if len(bounds) == 0 {
					return 0
				}
				return float64(bounds[len(bounds)-1])
			}
			lo := 0.0
			if i > 0 {
				lo = float64(bounds[i-1])
			}
			return lo + (float64(bounds[i])-lo)*frac
		}
		cum += float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return float64(bounds[len(bounds)-1])
}

// HistogramSnapshot is the frozen state of one histogram. Counts has one
// entry per bound plus the trailing overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is the frozen, JSON-ready state of a registry. Maps marshal with
// sorted keys, so equal snapshots encode to identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Nil registry → nil snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Empty reports whether the snapshot carries no instruments at all.
func (s *Snapshot) Empty() bool {
	return s == nil || (len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0)
}

// Equal reports deep equality of two snapshots (nil equals nil or empty).
func (s *Snapshot) Equal(o *Snapshot) bool {
	if s.Empty() || o.Empty() {
		return s.Empty() && o.Empty()
	}
	if len(s.Counters) != len(o.Counters) || len(s.Gauges) != len(o.Gauges) ||
		len(s.Histograms) != len(o.Histograms) {
		return false
	}
	for k, v := range s.Counters {
		if ov, ok := o.Counters[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.Gauges {
		if ov, ok := o.Gauges[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.Histograms {
		ov, ok := o.Histograms[k]
		if !ok || v.Count != ov.Count || v.Sum != ov.Sum ||
			len(v.Bounds) != len(ov.Bounds) || len(v.Counts) != len(ov.Counts) {
			return false
		}
		for i := range v.Bounds {
			if v.Bounds[i] != ov.Bounds[i] {
				return false
			}
		}
		for i := range v.Counts {
			if v.Counts[i] != ov.Counts[i] {
				return false
			}
		}
	}
	return true
}

// Diff returns a short human-readable description of the first difference
// between two snapshots, or "" when equal. For test failure messages.
func (s *Snapshot) Diff(o *Snapshot) string {
	if s.Equal(o) {
		return ""
	}
	if s.Empty() != o.Empty() {
		return fmt.Sprintf("one snapshot empty (a=%v b=%v)", s.Empty(), o.Empty())
	}
	for k, v := range s.Counters {
		if ov := o.Counters[k]; ov != v {
			return fmt.Sprintf("counter %s: %d vs %d", k, v, ov)
		}
	}
	for k, v := range s.Gauges {
		if ov := o.Gauges[k]; ov != v {
			return fmt.Sprintf("gauge %s: %d vs %d", k, v, ov)
		}
	}
	for k, v := range s.Histograms {
		if ov, ok := o.Histograms[k]; !ok || v.Count != ov.Count || v.Sum != ov.Sum {
			return fmt.Sprintf("histogram %s: count/sum %d/%d vs %d/%d", k, v.Count, v.Sum, ov.Count, ov.Sum)
		}
	}
	return "snapshots differ (instrument sets)"
}

// Merge folds a snapshot into the registry: counters add, gauges take the
// maximum, histograms (matched by name, created with the snapshot's bounds
// if absent) add bucket-wise. Used by runners to aggregate per-experiment
// registries into a live run-level view. No-op on nil registry or empty
// snapshot; histograms with mismatched bounds are skipped rather than mixed.
func (r *Registry) Merge(s *Snapshot) {
	if r == nil || s.Empty() {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).SetMax(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name, hs.Bounds)
		if len(h.bounds) != len(hs.Bounds) || len(h.counts) != len(hs.Counts) {
			continue
		}
		same := true
		for i := range h.bounds {
			if h.bounds[i] != hs.Bounds[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		for i, c := range hs.Counts {
			h.counts[i].Add(c)
		}
		h.sum.Add(hs.Sum)
		h.n.Add(hs.Count)
	}
}
