package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition for Snapshot, plus a small validating parser so
// tests (and `uninet trace -check-metrics`) can assert that /metrics really
// is well-formed exposition rather than eyeballing it.
//
// The registry is flat — instruments are identified by name only — so the
// labeled-metric convention is syntactic: an instrument named
//
//	service.stage_us{endpoint="simulate",route="local",stage="compute"}
//
// is exposed as metric family service_stage_us with those labels. Names
// without a '{' are unlabeled. Dots (and any other character outside
// [a-zA-Z0-9_:]) in the family name become underscores; label keys are
// sanitized the same way and label values are escaped per the exposition
// format. Counters gain the conventional _total suffix; histograms emit
// cumulative le buckets, +Inf, _sum, and _count.

// promName sanitizes a family or label name into [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// splitLabeledName splits the registry naming convention base{k="v",...}
// into the sanitized family name and a sorted, escaped label list (possibly
// empty). Malformed label suffixes are treated as part of the name and
// sanitized away rather than rejected — exposition must never fail.
func splitLabeledName(name string) (family string, labels []promLabel) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return promName(name), nil
	}
	base, body := name[:open], name[open+1:len(name)-1]
	parsed, ok := parseLabelBody(body)
	if !ok {
		return promName(name), nil
	}
	return promName(base), parsed
}

type promLabel struct{ k, v string }

// parseLabelBody parses `k="v",k2="v2"` (the convention used when naming
// labeled instruments). Escapes in values are decoded here and re-applied at
// write time, so convention and exposition agree on the literal value.
func parseLabelBody(body string) ([]promLabel, bool) {
	var out []promLabel
	s := body
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				val.WriteByte(rest[i+1])
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
			val.WriteByte(rest[i])
		}
		if end < 0 {
			return nil, false
		}
		out = append(out, promLabel{k: promName(key), v: val.String()})
		s = rest[end+1:]
		if s != "" {
			if s[0] != ',' {
				return nil, false
			}
			s = s[1:]
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out, true
}

// renderLabels renders a label set (plus optional extra pairs, already in
// order) as {k="v",...}; empty input renders "".
func renderLabels(labels []promLabel, extra ...promLabel) string {
	all := make([]promLabel, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily groups one exposition family's samples.
type promFamily struct {
	name  string
	kind  string // "counter", "gauge", "histogram"
	lines []string
}

// WriteProm renders the snapshot in Prometheus text exposition format 0.0.4.
// Families are emitted in sorted name order with # TYPE headers, so output
// is deterministic for a fixed snapshot.
func (s *Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fams := map[string]*promFamily{}
	add := func(name, kind string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		return f
	}
	if s != nil {
		for name, v := range s.Counters {
			fam, labels := splitLabeledName(name)
			fam += "_total"
			f := add(fam, "counter")
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d", fam, renderLabels(labels), v))
		}
		for name, v := range s.Gauges {
			fam, labels := splitLabeledName(name)
			f := add(fam, "gauge")
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d", fam, renderLabels(labels), v))
		}
		for name, hs := range s.Histograms {
			fam, labels := splitLabeledName(name)
			f := add(fam, "histogram")
			var cum int64
			for i, b := range hs.Bounds {
				if i < len(hs.Counts) {
					cum += hs.Counts[i]
				}
				f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
					fam, renderLabels(labels, promLabel{k: "le", v: strconv.FormatInt(b, 10)}), cum))
			}
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
				fam, renderLabels(labels, promLabel{k: "le", v: "+Inf"}), hs.Count))
			f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %d", fam, renderLabels(labels), hs.Sum))
			f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", fam, renderLabels(labels), hs.Count))
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		sort.Strings(f.lines)
		for _, l := range f.lines {
			if _, err := fmt.Fprintln(bw, l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed exposition family: the # TYPE declaration plus
// every sample that belongs to it (including _bucket/_sum/_count samples of
// a histogram family).
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParseProm parses and validates Prometheus text exposition 0.0.4. It
// enforces the structural invariants tests care about: every sample belongs
// to a declared family, names and label keys are well-formed, histogram
// families have monotone cumulative buckets ending in a +Inf bucket whose
// value matches _count. Returns families keyed by name.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("prom: line %d: invalid family name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %q", lineNo, name)
				}
				fams[name] = &PromFamily{Name: name, Type: typ}
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %v", lineNo, err)
		}
		fam := familyOf(fams, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("prom: line %d: sample %q has no TYPE declaration", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := checkPromHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// familyOf resolves a sample name to its declared family, allowing the
// histogram suffixes.
func familyOf(fams map[string]*PromFamily, name string) *PromFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
	}
	return nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		end := -1
		for j := i + 1; j < len(line); j++ {
			if line[j] == '"' { // skip quoted values (with escapes)
				for j++; j < len(line); j++ {
					if line[j] == '\\' {
						j++
						continue
					}
					if line[j] == '"' {
						break
					}
				}
				continue
			}
			if line[j] == '}' {
				end = j
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, ok := parsePromLabels(line[i+1 : end])
		if !ok {
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		s.Labels = labels
		i = end + 1
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// A timestamp may follow the value; take the first field.
	val := strings.Fields(rest)[0]
	v, err := parsePromValue(val)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", val, err)
	}
	s.Value = v
	return s, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return float64(int64(1) << 62), nil
	case "-Inf":
		return -float64(int64(1) << 62), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parsePromLabels(body string) (map[string]string, bool) {
	out := map[string]string{}
	s := strings.TrimSuffix(body, ",")
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		key := s[:eq]
		if !validPromName(key) {
			return nil, false
		}
		rest := s[eq+2:]
		var val strings.Builder
		end := -1
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, false
				}
				i++
				continue
			}
			if c == '"' {
				end = i
				break
			}
			val.WriteByte(c)
		}
		if end < 0 {
			return nil, false
		}
		if _, dup := out[key]; dup {
			return nil, false
		}
		out[key] = val.String()
		s = rest[end+1:]
		if s != "" {
			if s[0] != ',' {
				return nil, false
			}
			s = s[1:]
		}
	}
	return out, true
}

// checkPromHistogram validates one histogram family: per label set (ignoring
// le), buckets are cumulative non-decreasing in le order, a +Inf bucket
// exists, and its value equals the _count sample.
func checkPromHistogram(f *PromFamily) error {
	type series struct {
		buckets []PromSample
		count   *float64
	}
	groups := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		ks := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		var b strings.Builder
		for _, k := range ks {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	group := func(labels map[string]string) *series {
		k := keyOf(labels)
		g, ok := groups[k]
		if !ok {
			g = &series{}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("prom: histogram %s bucket without le label", f.Name)
			}
			group(s.Labels).buckets = append(group(s.Labels).buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			group(s.Labels).count = &v
		}
	}
	for key, g := range groups {
		if len(g.buckets) == 0 {
			return fmt.Errorf("prom: histogram %s{%s} has no buckets", f.Name, key)
		}
		sort.Slice(g.buckets, func(i, j int) bool {
			return promLE(g.buckets[i].Labels["le"]) < promLE(g.buckets[j].Labels["le"])
		})
		last := g.buckets[len(g.buckets)-1]
		if last.Labels["le"] != "+Inf" {
			return fmt.Errorf("prom: histogram %s{%s} missing +Inf bucket", f.Name, key)
		}
		var prev float64
		for _, b := range g.buckets {
			if b.Value < prev {
				return fmt.Errorf("prom: histogram %s{%s} buckets not cumulative at le=%s",
					f.Name, key, b.Labels["le"])
			}
			prev = b.Value
		}
		if g.count != nil && *g.count != last.Value {
			return fmt.Errorf("prom: histogram %s{%s} +Inf bucket %v != count %v",
				f.Name, key, last.Value, *g.count)
		}
	}
	return nil
}

func promLE(s string) float64 {
	if s == "+Inf" {
		return float64(int64(1) << 62)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return float64(int64(1) << 62)
	}
	return v
}
