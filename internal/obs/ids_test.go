package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestIDSourceDeterminism: a fixed seed yields a fixed, nonzero ID stream —
// the property tests lean on to pin exact trace identities.
func TestIDSourceDeterminism(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 100; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("draw %d: trace IDs diverged: %v vs %v", i, ta, tb)
		}
		if ta.IsZero() {
			t.Fatalf("draw %d: zero trace ID", i)
		}
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb || sa == 0 {
			t.Fatalf("draw %d: span IDs %v vs %v", i, sa, sb)
		}
	}
	c := NewIDSource(43)
	if a0, c0 := NewIDSource(42).TraceID(), c.TraceID(); a0 == c0 {
		t.Fatal("different seeds produced the same first trace ID")
	}
}

func TestIDSourceNilSafe(t *testing.T) {
	var s *IDSource
	if !s.TraceID().IsZero() {
		t.Fatal("nil source produced a trace ID")
	}
	if s.SpanID() != 0 {
		t.Fatal("nil source produced a span ID")
	}
}

// TestSpanContextHeaderRoundTrip: HeaderValue/ParseSpanContext are inverses
// for both wire forms.
func TestSpanContextHeaderRoundTrip(t *testing.T) {
	src := NewIDSource(7)
	for i := 0; i < 20; i++ {
		sc := SpanContext{Trace: src.TraceID(), Span: src.SpanID()}
		got, ok := ParseSpanContext(sc.HeaderValue())
		if !ok || got != sc {
			t.Fatalf("round trip failed: %v -> %q -> %v ok=%v", sc, sc.HeaderValue(), got, ok)
		}
		bare := SpanContext{Trace: sc.Trace}
		got, ok = ParseSpanContext(bare.HeaderValue())
		if !ok || got != bare {
			t.Fatalf("trace-only round trip failed: %q", bare.HeaderValue())
		}
	}
}

func TestParseSpanContextRejects(t *testing.T) {
	bad := []string{
		"",
		"deadbeef",
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz",  // 32 non-hex
		"0123456789abcdef0123456789abcdef0", // 33 chars
		"0123456789abcdef0123456789abcdef_0123456789abcdef", // wrong separator
		"0123456789abcdef0123456789abcdef-0123456789abcdeZ", // bad span hex
		"0123456789abcdef0123456789abcdef-0123",             // short span
	}
	for _, s := range bad {
		if _, ok := ParseSpanContext(s); ok {
			t.Errorf("ParseSpanContext(%q) accepted", s)
		}
	}
	if sc, ok := ParseSpanContext("0123456789abcdef0123456789abcdef"); !ok || sc.Span != 0 {
		t.Fatal("valid trace-only header rejected")
	}
}

// TestStartSpanCtxParentage: nested StartSpanCtx calls share one trace and
// chain parent IDs, and the emitted JSONL carries all three identity fields.
func TestStartSpanCtxParentage(t *testing.T) {
	var buf bytes.Buffer
	r := New().SetIDSeed(1).SetTrace(NewTraceSink(&buf))
	ctx, root := r.StartSpanCtx(context.Background(), "root")
	if root == nil {
		t.Fatal("no root span with sink attached")
	}
	ctx2, child := r.StartSpanCtx(ctx, "child")
	_, grand := r.StartSpanCtx(ctx2, "grandchild")
	grand.End()
	child.End()
	root.End()
	if err := r.Sink().Flush(); err != nil {
		t.Fatal(err)
	}

	events := map[string]SpanEvent{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		events[ev.Span] = ev
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	rt, ch, gr := events["root"], events["child"], events["grandchild"]
	if rt.Trace == "" || rt.Trace != ch.Trace || ch.Trace != gr.Trace {
		t.Fatalf("trace IDs not shared: %q %q %q", rt.Trace, ch.Trace, gr.Trace)
	}
	if rt.Parent != "" {
		t.Fatalf("root has parent %q", rt.Parent)
	}
	if ch.Parent != rt.SpanID || gr.Parent != ch.SpanID {
		t.Fatalf("parent chain broken: root=%s child(parent=%s) grand(parent=%s)",
			rt.SpanID, ch.Parent, gr.Parent)
	}
	if got := SpanFromContext(ctx2); got.Span.String() != ch.SpanID {
		t.Fatalf("context carries span %s, child emitted %s", got.Span, ch.SpanID)
	}
}

// TestStartSpanCtxJoinsIncomingContext: a context seeded via ContextWithSpan
// (the header-propagation path) parents the new span into the remote trace.
func TestStartSpanCtxJoinsIncomingContext(t *testing.T) {
	var buf bytes.Buffer
	r := New().SetIDSeed(2).SetTrace(NewTraceSink(&buf))
	remote := SpanContext{Trace: TraceID{Hi: 0xabc, Lo: 0xdef}, Span: SpanID(0x123)}
	ctx := ContextWithSpan(context.Background(), remote)
	_, sp := r.StartSpanCtx(ctx, "owner")
	if got := sp.Context().Trace; got != remote.Trace {
		t.Fatalf("span trace %v, want remote %v", got, remote.Trace)
	}
	sp.End()
	r.Sink().Flush()
	var ev SpanEvent
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Trace != remote.Trace.String() || ev.Parent != remote.Span.String() {
		t.Fatalf("event trace=%q parent=%q, want trace=%q parent=%q",
			ev.Trace, ev.Parent, remote.Trace, remote.Span)
	}
}

// TestStartSpanCtxDisabledZeroAlloc: with no sink, StartSpanCtx must return
// the context untouched with zero allocations — the disabled-tracing
// contract the serving hot path relies on.
func TestStartSpanCtxDisabledZeroAlloc(t *testing.T) {
	r := New()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := r.StartSpanCtx(ctx, "x")
		if sp != nil || c2 != ctx {
			t.Fatal("disabled StartSpanCtx not a no-op")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpanCtx allocates %.1f/op, want 0", allocs)
	}
}

func TestTraceEnabled(t *testing.T) {
	r := New()
	if r.TraceEnabled() {
		t.Fatal("fresh registry reports tracing enabled")
	}
	r.SetTrace(NewTraceSink(&bytes.Buffer{}))
	if !r.TraceEnabled() {
		t.Fatal("registry with sink reports tracing disabled")
	}
	var nilr *Registry
	if nilr.TraceEnabled() || nilr.Sink() != nil || nilr.IDs() != nil {
		t.Fatal("nil registry trace accessors not nil-safe")
	}
}
