package obs

import (
	"runtime"
	"time"
)

// RuntimeSampler folds Go runtime health into a registry so /metrics covers
// process health — goroutine count, heap bytes, GC activity — not just
// domain counters. Gauges use plain Set (last sample wins; runtime state is
// inherently non-deterministic and these names never enter byte-identical
// snapshot comparisons), the GC-run counter advances by NumGC deltas, and
// individual GC pauses land in a histogram via the PauseNs ring.
type RuntimeSampler struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcRuns     *Counter
	gcPauseUS  *Histogram
	lastNumGC  uint32
}

// gcPauseBucketsUS spans sub-100µs young-gen pauses through pathological
// 100ms+ stalls.
var gcPauseBucketsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// NewRuntimeSampler resolves the runtime instruments on r. Nil registry →
// sampler whose Sample no-ops (nil instruments).
func NewRuntimeSampler(r *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		goroutines: r.Gauge("runtime.goroutines"),
		heapAlloc:  r.Gauge("runtime.heap_alloc_bytes"),
		heapSys:    r.Gauge("runtime.heap_sys_bytes"),
		gcRuns:     r.Counter("runtime.gc_runs"),
		gcPauseUS:  r.Histogram("runtime.gc_pause_us", gcPauseBucketsUS),
	}
}

// Sample takes one reading. Not safe for concurrent use with itself (the
// NumGC delta tracking is single-consumer); the serve loop calls it from one
// ticker goroutine.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.heapAlloc.Set(int64(m.HeapAlloc))
	s.heapSys.Set(int64(m.HeapSys))
	if n := m.NumGC - s.lastNumGC; n > 0 {
		s.gcRuns.Add(int64(n))
		// PauseNs is a ring of the last 256 pauses indexed by NumGC.
		if n > uint32(len(m.PauseNs)) {
			n = uint32(len(m.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			idx := (m.NumGC - i + uint32(len(m.PauseNs)) - 1) % uint32(len(m.PauseNs))
			s.gcPauseUS.Observe(int64(m.PauseNs[idx] / 1000))
		}
		s.lastNumGC = m.NumGC
	}
}

// Run samples every interval until stop is closed, taking one final sample
// on the way out so short-lived processes still report. Intended to be run
// as a goroutine: `go sampler.Run(5*time.Second, stopCh)`.
func (s *RuntimeSampler) Run(interval time.Duration, stop <-chan struct{}) {
	if s == nil {
		return
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	s.Sample()
	for {
		select {
		case <-t.C:
			s.Sample()
		case <-stop:
			s.Sample()
			return
		}
	}
}
