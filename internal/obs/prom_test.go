package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestWritePromParses: the exposition writer's output must survive our own
// validating parser — the same check the /metrics tests and the smoke script
// run against a live server.
func TestWritePromParses(t *testing.T) {
	r := New()
	r.Counter("service.requests").Add(7)
	r.Counter(`service.stage_errors{endpoint="simulate",route="local"}`).Add(2)
	r.Gauge("runtime.goroutines").Set(13)
	h := r.Histogram(`service.stage_us{endpoint="simulate",route="local",stage="compute"}`,
		[]int64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5 * 1000 * 1000) // overflow

	var buf bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	fams, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own output failed to parse: %v\n%s", err, out)
	}

	c := fams["service_requests_total"]
	if c == nil || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 7 {
		t.Fatalf("counter family wrong: %+v\n%s", c, out)
	}
	lc := fams["service_stage_errors_total"]
	if lc == nil || len(lc.Samples) != 1 {
		t.Fatalf("labeled counter family wrong: %+v", lc)
	}
	if lc.Samples[0].Labels["endpoint"] != "simulate" || lc.Samples[0].Labels["route"] != "local" {
		t.Fatalf("labels lost: %v", lc.Samples[0].Labels)
	}
	g := fams["runtime_goroutines"]
	if g == nil || g.Type != "gauge" || g.Samples[0].Value != 13 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	hf := fams["service_stage_us"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hf)
	}
	// 3 finite buckets + +Inf + sum + count = 6 samples.
	if len(hf.Samples) != 6 {
		t.Fatalf("histogram has %d samples, want 6:\n%s", len(hf.Samples), out)
	}
	var count, sum float64
	for _, s := range hf.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case s.Labels["le"] == "1000":
			if s.Value != 2 { // cumulative: 50 and 500
				t.Fatalf("le=1000 bucket %v, want 2", s.Value)
			}
		}
	}
	if count != 3 || sum != 50+500+5*1000*1000 {
		t.Fatalf("count=%v sum=%v", count, sum)
	}
}

// TestWritePromDeterministic: same snapshot, same bytes.
func TestWritePromDeterministic(t *testing.T) {
	r := New()
	r.Counter("a.b").Inc()
	r.Counter(`c{x="1"}`).Inc()
	r.Histogram("h.us", []int64{1, 2}).Observe(1)
	s := r.Snapshot()
	var b1, b2 bytes.Buffer
	if err := s.WriteProm(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestWritePromSanitizesAndEscapes(t *testing.T) {
	r := New()
	r.Counter(`weird.name-x{path="a\"b\\c"}`).Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sanitized output failed to parse: %v\n%s", err, buf.String())
	}
	f := fams["weird_name_x_total"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("sanitized family missing:\n%s", buf.String())
	}
	if got := f.Samples[0].Labels["path"]; got != `a"b\c` {
		t.Fatalf("escaped label value round-tripped to %q", got)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared sample":    "foo 1\n",
		"bad name":             "# TYPE 9bad counter\n9bad 1\n",
		"missing value":        "# TYPE foo counter\nfoo\n",
		"bad value":            "# TYPE foo counter\nfoo xyz\n",
		"unterminated labels":  "# TYPE foo counter\nfoo{a=\"1\" 2\n",
		"duplicate TYPE":       "# TYPE foo counter\n# TYPE foo gauge\n",
		"bucket without le":    "# TYPE h histogram\nh_bucket 1\nh_count 1\nh_sum 1\n",
		"missing +Inf":         "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n",
		"inf mismatches count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 1\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

func TestParsePromAcceptsValid(t *testing.T) {
	in := `# HELP h a histogram
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 3
h_count 2
# TYPE g gauge
g{node="n1"} 4
`
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2", len(fams))
	}
}

// TestQuantile: the linear-interpolation estimator against hand-computed
// values.
func TestQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 10},  // rank 10 = exactly the top of bucket 1
		{0.25, 5},  // rank 5, halfway through bucket 1 (0..10)
		{0.75, 15}, // rank 15, halfway through bucket 2 (10..20)
		{1.0, 20},  // rank 20 = top of bucket 2
		{0.0, 1},   // rank clamps to 1 → 1/10 through bucket 1
		{-0.5, 1},  // q clamps to 0
		{1.5, 20},  // q clamps to 1
		{0.05, 1},  // rank 1 → 1/10 of first bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileOverflowAndEmpty(t *testing.T) {
	h := newHistogram([]int64{10, 20})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	h.Observe(1000) // overflow bucket
	if got := h.Quantile(0.99); got != 20 {
		t.Fatalf("overflow Quantile = %v, want last bound 20", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram Quantile non-zero")
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.9) != 0 {
		t.Fatal("empty snapshot Quantile non-zero")
	}
}

func TestQuantileSnapshotMatchesLive(t *testing.T) {
	r := New()
	h := r.Histogram("h", []int64{100, 1000, 10000})
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 7 % 12000)
	}
	hs := r.Snapshot().Histograms["h"]
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		if live, snap := h.Quantile(q), hs.Quantile(q); live != snap {
			t.Fatalf("q=%v: live %v != snapshot %v", q, live, snap)
		}
	}
}

// TestRuntimeSampler: one Sample populates the health instruments.
func TestRuntimeSampler(t *testing.T) {
	r := New()
	s := NewRuntimeSampler(r)
	s.Sample()
	snap := r.Snapshot()
	if snap.Gauges["runtime.goroutines"] <= 0 {
		t.Fatalf("goroutines gauge %d", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 || snap.Gauges["runtime.heap_sys_bytes"] <= 0 {
		t.Fatalf("heap gauges %d / %d",
			snap.Gauges["runtime.heap_alloc_bytes"], snap.Gauges["runtime.heap_sys_bytes"])
	}
	var nilS *RuntimeSampler
	nilS.Sample() // must not panic
}

func TestRuntimeSamplerRunStops(t *testing.T) {
	r := New()
	s := NewRuntimeSampler(r)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		s.Run(time.Hour, stop) // final sample fires on stop even with a long tick
		close(done)
	}()
	close(stop)
	<-done
	if r.Snapshot().Gauges["runtime.goroutines"] <= 0 {
		t.Fatal("Run exited without sampling")
	}
}
