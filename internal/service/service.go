// Package service turns the laboratory into a server: a typed
// request/response layer over the embedding, routing, and Theorem 2.1
// simulation engines, with admission control (bounded queue, per-request
// deadlines, explicit overload rejection), a worker pool sized from
// GOMAXPROCS, graceful drain on shutdown, and singleflight request
// coalescing backed by the shared internal/cache LRU.
//
// The caching story mirrors the paper's upper bound: the static embedding
// and the per-step ⌈n/m⌉–⌈n/m⌉ routing schedule are functions of
// (topology, n, m, seed) alone — "known in advance" (§2) — so the service
// computes each artifact once and serves it many times. Three caches share
// the internal/cache implementation: request results (keyed by the full
// request), host graphs (keyed by topology/m/seed), and routing schedules
// (keyed by host-graph hash + relation; consulted by the universal and
// routing hot paths via CachedRouter).
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"universalnet/internal/cache"
	"universalnet/internal/obs"
	"universalnet/internal/routing"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrOverloaded reports an admission-control rejection: the bounded
	// queue is full. Maps to 429.
	ErrOverloaded = errors.New("service: overloaded, queue full")
	// ErrClosed reports a request that arrived during or after graceful
	// drain. Maps to 503.
	ErrClosed = errors.New("service: draining")
	// ErrInvalid wraps request-validation failures. Maps to 400.
	ErrInvalid = errors.New("service: invalid request")
)

// Config sizes a Service. Zero values pick defaults.
type Config struct {
	// Workers is the worker-pool size; 0 ⇒ GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; 0 ⇒ 4·Workers. Requests
	// arriving with the queue full fail fast with ErrOverloaded.
	QueueDepth int
	// DefaultDeadline bounds a request's total latency (queue wait +
	// compute) when the request carries none; 0 ⇒ 30s.
	DefaultDeadline time.Duration
	// CacheBudget is the byte budget of the result cache; 0 ⇒ 32 MiB. The
	// host and schedule caches get the same budget.
	CacheBudget int64
	// Obs receives service metrics (service.*, service.cache.*,
	// service.hosts.*, routing.cache.*). May be nil.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.CacheBudget <= 0 {
		c.CacheBudget = 32 << 20
	}
	return c
}

// Service executes Embed/Route/Simulate requests through a bounded queue
// and a worker pool. Construct with New; Close drains it.
type Service struct {
	cfg Config
	obs *obs.Registry

	results   *cache.Cache[string, any]
	hosts     *cache.Cache[string, hostEntry]
	schedules *cache.Cache[string, routing.Result]

	mu     sync.RWMutex // guards closed vs. sends on jobs
	closed bool
	jobs   chan func()
	wg     sync.WaitGroup

	latency    *obs.Histogram
	tele       *telemetry   // per-(endpoint,route,stage) histograms; nil without a registry
	encodeErrs *obs.Counter // response-encode failures (writeJSON)
}

// latencyBuckets bounds the request-latency histogram in milliseconds.
var latencyBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// New starts a Service: the worker pool runs until Close.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		obs:       cfg.Obs,
		results:   cache.New[string, any]("service.cache", cfg.CacheBudget, resultSize, cfg.Obs),
		hosts:     cache.New[string, hostEntry]("service.hosts", cfg.CacheBudget, hostSize, cfg.Obs),
		schedules: routing.NewScheduleCache(cfg.CacheBudget, cfg.Obs),
		jobs:      make(chan func(), cfg.QueueDepth),
	}
	s.latency = cfg.Obs.Histogram("service.latency_ms", latencyBuckets)
	s.tele = newTelemetry(cfg.Obs)
	s.encodeErrs = cfg.Obs.Counter("service.encode_errors")
	cfg.Obs.Gauge("service.workers").Set(int64(cfg.Workers))
	cfg.Obs.Gauge("service.queue_depth").Set(int64(cfg.QueueDepth))
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	return s
}

// Close gracefully drains the service: new submissions are rejected with
// ErrClosed immediately, queued and in-flight requests finish, and Close
// returns when the pool has wound down (or ctx expires, leaving workers to
// finish in the background).
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether Close has begun.
func (s *Service) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// submit enqueues job, failing fast when the queue is full (admission
// control) or the service is draining. The send happens under the read
// lock so it cannot race Close's close(s.jobs).
func (s *Service) submit(job func()) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.obs.Counter("service.rejected_draining").Inc()
		return ErrClosed
	}
	select {
	case s.jobs <- job:
		s.obs.Counter("service.accepted").Inc()
		return nil
	default:
		s.obs.Counter("service.rejected").Inc()
		return ErrOverloaded
	}
}

// do is the request spine shared by Embed/Route/Simulate: fast-path cache
// hit, admission, singleflight-coalesced compute on a worker, deadline
// enforcement, and latency/outcome accounting. Returns the result and
// whether it came from cache without computing.
func (s *Service) do(ctx context.Context, kind, key string, deadlineMS int, compute func() (any, error)) (any, bool, error) {
	s.obs.Counter("service." + kind + ".requests").Inc()
	start := s.obs.Now()
	rt := timingsFrom(ctx)
	peekStart := time.Now()
	if v, ok := s.results.Peek(key); ok {
		rt.record(stageCache, peekStart)
		s.observe(start)
		return v, true, nil
	}
	deadline := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		deadline = time.Duration(deadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	type outcome struct {
		v   any
		err error
	}
	done := make(chan outcome, 1) // buffered: the worker never blocks on an abandoned request
	queueStart := time.Now()
	if err := s.submit(func() {
		// Queue wait is submit → worker pickup; the cache stage is the
		// GetOrCompute envelope (lookup + singleflight coalescing) minus the
		// compute body itself, so cache+compute sum to the worker's time.
		jobStart := time.Now()
		rt.record(stageQueue, queueStart)
		var computeUS int64
		v, err := s.results.GetOrCompute(key, func() (any, error) {
			computeStart := time.Now()
			defer func() {
				computeUS = time.Since(computeStart).Microseconds()
				rt.record(stageCompute, computeStart)
			}()
			return compute()
		})
		rt.recordUS(stageCache, jobStart.UnixMicro(), time.Since(jobStart).Microseconds()-computeUS)
		done <- outcome{v, err}
	}); err != nil {
		return nil, false, err
	}
	select {
	case out := <-done:
		if out.err != nil {
			s.obs.Counter("service.errors").Inc()
			return nil, false, out.err
		}
		s.observe(start)
		s.obs.Counter("service.completed").Inc()
		return out.v, false, nil
	case <-ctx.Done():
		// The job may still run and populate the cache; this caller just
		// stops waiting.
		s.obs.Counter("service.deadline_exceeded").Inc()
		return nil, false, fmt.Errorf("service: request deadline: %w", ctx.Err())
	}
}

// observe records one completed request's wall-clock latency.
func (s *Service) observe(start time.Time) {
	s.latency.Observe(s.obs.Now().Sub(start).Milliseconds())
}

// StageLatency is one (endpoint, route, stage) row of server-side latency
// percentiles in /v1/status, estimated from the stage histogram by linear
// interpolation (obs.Histogram.Quantile).
type StageLatency struct {
	Endpoint string  `json:"endpoint"`
	Route    string  `json:"route"`
	Stage    string  `json:"stage"`
	Count    int64   `json:"count"`
	P50US    float64 `json:"p50_us"`
	P95US    float64 `json:"p95_us"`
	P99US    float64 `json:"p99_us"`
}

// Status is the point-in-time operational summary served at /v1/status.
type Status struct {
	Workers          int            `json:"workers"`
	QueueDepth       int            `json:"queue_depth"`
	QueueLen         int            `json:"queue_len"`
	Draining         bool           `json:"draining"`
	Accepted         int64          `json:"accepted"`
	Rejected         int64          `json:"rejected"`
	RejectedDraining int64          `json:"rejected_draining"`
	Completed        int64          `json:"completed"`
	Errors           int64          `json:"errors"`
	DeadlineExceeded int64          `json:"deadline_exceeded"`
	EncodeErrors     int64          `json:"encode_errors"`
	SlowRequests     int64          `json:"slow_requests"`
	Cache            cache.Stats    `json:"cache"`
	Hosts            cache.Stats    `json:"hosts"`
	Schedules        cache.Stats    `json:"schedules"`
	Stages           []StageLatency `json:"stages,omitempty"`
}

// Status reads the current summary. Counter values are zero when the
// service was built without a registry.
func (s *Service) Status() Status {
	return Status{
		Workers:          s.cfg.Workers,
		QueueDepth:       s.cfg.QueueDepth,
		QueueLen:         len(s.jobs),
		Draining:         s.Draining(),
		Accepted:         s.obs.Counter("service.accepted").Value(),
		Rejected:         s.obs.Counter("service.rejected").Value(),
		RejectedDraining: s.obs.Counter("service.rejected_draining").Value(),
		Completed:        s.obs.Counter("service.completed").Value(),
		Errors:           s.obs.Counter("service.errors").Value(),
		DeadlineExceeded: s.obs.Counter("service.deadline_exceeded").Value(),
		EncodeErrors:     s.encodeErrs.Value(),
		SlowRequests:     s.obs.Counter("service.slow_requests").Value(),
		Cache:            s.results.Stats(),
		Hosts:            s.hosts.Stats(),
		Schedules:        s.schedules.Stats(),
		Stages:           s.stageLatencies(),
	}
}

// stageLatencies walks the telemetry histograms in fixed index order
// (deterministic row order) and reports percentiles for every populated
// (endpoint, route, stage) combination.
func (s *Service) stageLatencies() []StageLatency {
	t := s.tele
	if t == nil {
		return nil
	}
	var out []StageLatency
	for e := 0; e < epCount; e++ {
		for r := 0; r < routeCount; r++ {
			for st := 0; st < stageCount; st++ {
				h := t.stages[e][r][st]
				n := h.Count()
				if n == 0 {
					continue
				}
				out = append(out, StageLatency{
					Endpoint: endpointNames[e],
					Route:    routeNames[r],
					Stage:    stageNames[st],
					Count:    n,
					P50US:    h.Quantile(0.50),
					P95US:    h.Quantile(0.95),
					P99US:    h.Quantile(0.99),
				})
			}
		}
	}
	return out
}

// resultSize estimates a cached result's bytes. Results are small flat
// structs; a fixed conservative charge keeps the accounting cheap.
func resultSize(any) int64 { return 256 }
