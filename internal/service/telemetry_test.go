package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer, so trace sinks and slow logs
// written from handler goroutines can be read safely by the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// spanEvents decodes every JSONL span event in buf.
func spanEvents(t *testing.T, buf *syncBuffer) []obs.SpanEvent {
	t.Helper()
	var out []obs.SpanEvent
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev obs.SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out
}

// newTelemetryServer boots one single-node telemetry-wrapped service with a
// buffered trace sink.
func newTelemetryServer(t *testing.T, opts TelemetryOptions) (*Service, *httptest.Server, *syncBuffer) {
	t.Helper()
	reg := obs.New().SetIDSeed(1)
	traces := &syncBuffer{}
	reg.SetTrace(obs.NewTraceSink(traces))
	s := newTestService(t, Config{Workers: 2, Obs: reg})
	srv := httptest.NewServer(Telemetry(s, opts, Handler(s)))
	t.Cleanup(srv.Close)
	return s, srv, traces
}

// TestTelemetryStagesAndSpans: one local request records decode, queue,
// cache, compute, and encode stage histograms and emits a span tree rooted
// at http.request under a single trace ID echoed on the response.
func TestTelemetryStagesAndSpans(t *testing.T) {
	s, srv, traces := newTelemetryServer(t, TelemetryOptions{Node: "n1"})
	resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(simulateBody(3)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	echoed := resp.Header.Get(cluster.TraceHeader)
	if _, err := obs.ParseTraceID(echoed); err != nil {
		t.Fatalf("response trace header %q: %v", echoed, err)
	}
	if err := s.obs.Sink().Flush(); err != nil {
		t.Fatal(err)
	}

	events := spanEvents(t, traces)
	byName := map[string]obs.SpanEvent{}
	for _, ev := range events {
		if ev.Trace == "" {
			continue // legacy flat engine spans carry no trace identity
		}
		byName[ev.Span] = ev
		if ev.Trace != echoed {
			t.Fatalf("span %s trace %q != echoed %q", ev.Span, ev.Trace, echoed)
		}
	}
	root, ok := byName["http.request"]
	if !ok {
		t.Fatalf("no http.request root span; got %v", byName)
	}
	if root.Parent != "" {
		t.Fatalf("local root has parent %q", root.Parent)
	}
	for _, stage := range []string{"decode", "queue", "cache", "compute", "encode"} {
		ev, ok := byName[stage]
		if !ok {
			t.Fatalf("stage span %q missing; got %v", stage, byName)
		}
		if ev.Parent != root.SpanID {
			t.Fatalf("stage %s parent %q, want root %q", stage, ev.Parent, root.SpanID)
		}
	}

	// The stage histograms and /v1/status percentiles reflect the request.
	snap := s.obs.Snapshot()
	name := `service.stage_us{endpoint="simulate",route="local",stage="compute"}`
	if snap.Histograms[name].Count == 0 {
		t.Fatalf("compute stage histogram empty; histograms: %v", keysOf(snap.Histograms))
	}
	st := s.Status()
	if len(st.Stages) == 0 {
		t.Fatal("Status.Stages empty")
	}
	found := false
	for _, row := range st.Stages {
		if row.Stage == "compute" && row.Endpoint == "simulate" && row.Route == "local" {
			found = true
			if row.Count == 0 || row.P50US < 0 || row.P99US < row.P50US {
				t.Fatalf("implausible stage row %+v", row)
			}
		}
	}
	if !found {
		t.Fatalf("no compute row in %+v", st.Stages)
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTelemetryPropagationAcrossNodes: a forwarded request yields spans on
// both nodes sharing one trace ID, with the owner's root span parented
// under the ingress node's forward span — satellite 4's propagation proof.
func TestTelemetryPropagationAcrossNodes(t *testing.T) {
	const n = 2
	nodes := make([]*clusterTestNode, n)
	sinks := make([]*syncBuffer, n)
	addrs := make([]string, n)
	for i := range nodes {
		nodes[i] = &clusterTestNode{srv: httptest.NewUnstartedServer(nil)}
		addrs[i] = nodes[i].srv.Listener.Addr().String()
		nodes[i].addr = addrs[i]
	}
	for i, tn := range nodes {
		peers := []string{addrs[1-i]}
		sinks[i] = &syncBuffer{}
		tn.reg = obs.New().SetIDSeed(int64(100 + i)).SetTrace(obs.NewTraceSink(sinks[i]))
		tn.svc = New(Config{Workers: 2, QueueDepth: 64, Obs: tn.reg})
		var err error
		tn.node, err = cluster.NewNode(cluster.Config{
			Self: tn.addr, Peers: peers, Retries: 1,
			BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
			ForwardTimeout: 5 * time.Second, Obs: tn.reg,
			Breaker: cluster.BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Minute},
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.Config.Handler = Drain(tn.draining.Load,
			Telemetry(tn.svc, TelemetryOptions{Node: tn.addr},
				ClusterHandler(tn.svc, tn.node, ClusterOptions{})))
		tn.srv.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.shutdown()
		}
	})

	// A request to node 0 for a key node 1 owns forwards one hop.
	seed := seedOwnedBy(t, nodes[0].node, addrs[1])
	status, _, hdr := postNode(t, addrs[0], simulateBody(seed))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := hdr.Get(HeaderRoute); got != "forwarded" {
		t.Fatalf("route %q, want forwarded", got)
	}
	traceID := hdr.Get(cluster.TraceHeader)
	if traceID == "" {
		t.Fatal("no trace header on response")
	}
	for _, tn := range nodes {
		if err := tn.reg.Sink().Flush(); err != nil {
			t.Fatal(err)
		}
	}

	ingress := spanEvents(t, sinks[0])
	owner := spanEvents(t, sinks[1])
	if len(ingress) == 0 || len(owner) == 0 {
		t.Fatalf("spans missing: ingress=%d owner=%d", len(ingress), len(owner))
	}
	var ingressRoot, ingressForward, ownerRoot obs.SpanEvent
	for _, ev := range ingress {
		if ev.Trace == "" {
			continue // legacy flat engine spans
		}
		if ev.Trace != traceID {
			t.Fatalf("ingress span %s on trace %q, want %q", ev.Span, ev.Trace, traceID)
		}
		switch ev.Span {
		case "http.request":
			ingressRoot = ev
		case "forward":
			ingressForward = ev
		}
	}
	for _, ev := range owner {
		if ev.Trace == "" {
			continue
		}
		if ev.Trace != traceID {
			t.Fatalf("owner span %s on trace %q, want %q", ev.Span, ev.Trace, traceID)
		}
		if ev.Span == "http.request" {
			ownerRoot = ev
		}
	}
	if ingressRoot.SpanID == "" || ingressForward.SpanID == "" || ownerRoot.SpanID == "" {
		t.Fatalf("missing spans: root=%q forward=%q ownerRoot=%q",
			ingressRoot.SpanID, ingressForward.SpanID, ownerRoot.SpanID)
	}
	if ingressForward.Parent != ingressRoot.SpanID {
		t.Fatalf("forward parent %q, want ingress root %q", ingressForward.Parent, ingressRoot.SpanID)
	}
	if ownerRoot.Parent != ingressForward.SpanID {
		t.Fatalf("owner root parent %q, want ingress forward span %q",
			ownerRoot.Parent, ingressForward.SpanID)
	}

	// Forwarded-route stage histograms on the ingress node include the hop.
	snap := nodes[0].reg.Snapshot()
	fwd := `service.stage_us{endpoint="simulate",route="forwarded",stage="forward"}`
	if snap.Histograms[fwd].Count == 0 {
		t.Fatalf("forward stage histogram empty on ingress; %v", keysOf(snap.Histograms))
	}
}

// TestTelemetryDisabledNoTraceHeader: without a sink the middleware still
// records histograms but neither parses nor emits trace identity.
func TestTelemetryDisabledNoTraceHeader(t *testing.T) {
	reg := obs.New()
	s := newTestService(t, Config{Workers: 2, Obs: reg})
	srv := httptest.NewServer(Telemetry(s, TelemetryOptions{}, Handler(s)))
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/simulate", "application/json", bytes.NewReader(simulateBody(5)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h := resp.Header.Get(cluster.TraceHeader); h != "" {
		t.Fatalf("trace header %q with tracing disabled", h)
	}
	name := `service.request_us{endpoint="simulate",route="local"}`
	if reg.Snapshot().Histograms[name].Count == 0 {
		t.Fatal("request histogram empty with tracing disabled")
	}
}

// TestTelemetryNilRegistryPassthrough: Telemetry on a registry-less service
// returns next untouched.
func TestTelemetryNilRegistryPassthrough(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, Obs: nil})
	// newTestService injects a registry; build one truly without.
	bare := New(Config{Workers: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		bare.Close(ctx)
	})
	next := Handler(bare)
	if got := Telemetry(bare, TelemetryOptions{}, next); got != next {
		t.Fatal("Telemetry wrapped a registry-less service")
	}
	_ = s
}

// TestSlowRequestWatchdog: a request over the threshold increments the slow
// counter, writes a structured slow-log line, and captures a CPU profile;
// the rate limit keeps a second slow request from profiling again.
func TestSlowRequestWatchdog(t *testing.T) {
	dir := t.TempDir()
	slowLog := &syncBuffer{}
	reg := obs.New().SetIDSeed(2)
	traces := &syncBuffer{}
	reg.SetTrace(obs.NewTraceSink(traces))
	s := newTestService(t, Config{Workers: 2, Obs: reg})
	srv := httptest.NewServer(Telemetry(s, TelemetryOptions{
		Node:            "n1",
		SlowThreshold:   time.Nanosecond, // everything is slow
		SlowLog:         slowLog,
		ProfileDir:      dir,
		ProfileDuration: 10 * time.Millisecond,
		ProfileEvery:    time.Hour, // rate limit: only the first captures
	}, Handler(s)))
	t.Cleanup(srv.Close)

	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/v1/simulate", "application/json",
			bytes.NewReader(simulateBody(int64(10+i))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := reg.Counter("service.slow_requests").Value(); got != 2 {
		t.Fatalf("slow_requests = %d, want 2", got)
	}
	if got := s.Status().SlowRequests; got != 2 {
		t.Fatalf("Status.SlowRequests = %d, want 2", got)
	}

	lines := bytes.Split(bytes.TrimSpace(slowLog.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2:\n%s", len(lines), slowLog.Bytes())
	}
	var first slowLogLine
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatalf("bad slow-log line: %v", err)
	}
	if first.Endpoint != "simulate" || first.TotalUS <= 0 || first.Trace == "" {
		t.Fatalf("implausible slow-log line %+v", first)
	}
	if len(first.Stages) == 0 {
		t.Fatalf("slow-log line has no stage breakdown: %+v", first)
	}
	if first.Profile == "" {
		t.Fatal("first slow request did not schedule a profile")
	}
	var second slowLogLine
	if err := json.Unmarshal(lines[1], &second); err != nil {
		t.Fatal(err)
	}
	if second.Profile != "" {
		t.Fatalf("second slow request profiled despite rate limit: %+v", second)
	}

	// Wait for the async capture to finish, then check the file landed.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("service.slow_profiles").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("profile capture never completed (errors=%d)",
				reg.Counter("service.slow_profile_errors").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	info, err := os.Stat(first.Profile)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("profile file empty")
	}
	if filepath.Dir(first.Profile) != dir {
		t.Fatalf("profile %q outside dir %q", first.Profile, dir)
	}
}

// failingWriter errors on the body write, so Encode fails after the status
// line — the case writeJSON used to swallow.
type failingWriter struct {
	httptest.ResponseRecorder
}

func (w *failingWriter) Write([]byte) (int, error) {
	return 0, errors.New("client hung up")
}

// TestWriteJSONCountsEncodeErrors: satellite 2 — encode failures are counted
// and surfaced in /v1/status.
func TestWriteJSONCountsEncodeErrors(t *testing.T) {
	reg := obs.New()
	s := newTestService(t, Config{Workers: 1, Obs: reg})
	w := &failingWriter{ResponseRecorder: *httptest.NewRecorder()}
	writeJSON(w, http.StatusOK, map[string]string{"a": "b"}, s.encodeErrs)
	if got := s.encodeErrs.Value(); got != 1 {
		t.Fatalf("encode errors = %d, want 1", got)
	}
	if got := s.Status().EncodeErrors; got != 1 {
		t.Fatalf("Status.EncodeErrors = %d, want 1", got)
	}
	// Nil counter must not panic (Drain/handleHealth paths).
	writeJSON(&failingWriter{ResponseRecorder: *httptest.NewRecorder()}, http.StatusOK, "x", nil)
}

// TestStatusForTable: satellite 4 — the full error→HTTP mapping.
func TestStatusForTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"invalid", fmt.Errorf("wrap: %w", ErrInvalid), http.StatusBadRequest},
		{"overloaded", ErrOverloaded, http.StatusTooManyRequests},
		{"overloaded wrapped", fmt.Errorf("x: %w", ErrOverloaded), http.StatusTooManyRequests},
		{"closed", ErrClosed, http.StatusServiceUnavailable},
		{"peer unreachable", cluster.ErrPeerUnreachable, http.StatusBadGateway},
		{"peer unreachable wrapped", fmt.Errorf("f: %w", cluster.ErrPeerUnreachable), http.StatusBadGateway},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, http.StatusGatewayTimeout},
		{"deadline wrapped", fmt.Errorf("service: request deadline: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"engine error", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := statusFor(c.err); got != c.want {
				t.Fatalf("statusFor(%v) = %d, want %d", c.err, got, c.want)
			}
		})
	}
}

// TestDrainConnectionClose: satellite 4 — draining answers 503 with
// Connection: close so keep-alive clients re-dial elsewhere.
func TestDrainConnectionClose(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	draining := false
	h := Drain(func() bool { return draining }, Handler(s))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-drain health = %d", rec.Code)
	}
	if got := rec.Header().Get("Connection"); got != "" {
		t.Fatalf("pre-drain Connection header %q", got)
	}

	draining = true
	for _, target := range []string{"/v1/health", "/v1/simulate", "/v1/status"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, strings.NewReader("{}")))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("draining %s = %d, want 503", target, rec.Code)
		}
		if got := rec.Header().Get("Connection"); got != "close" {
			t.Fatalf("draining %s Connection = %q, want close", target, got)
		}
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("draining %s body %q", target, rec.Body.String())
		}
	}
}

// TestTimingsDisabledZeroAlloc: the nil-timings fast path of the stage
// recorder and the disabled StartSpanCtx allocate nothing — the warm-path
// contract for servers running without telemetry.
func TestTimingsDisabledZeroAlloc(t *testing.T) {
	var rt *reqTimings
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		rt.record(stageCompute, start)
		rt.recordUS(stageForward, 1, 1)
	})
	if allocs != 0 {
		t.Fatalf("nil reqTimings record allocates %.1f/op", allocs)
	}
	reg := obs.New() // no sink: tracing disabled
	ctx := context.Background()
	allocs = testing.AllocsPerRun(1000, func() {
		c2, sp := reg.StartSpanCtx(ctx, "x")
		if sp != nil || c2 != ctx {
			t.Fatal("disabled tracing not free")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpanCtx allocates %.1f/op", allocs)
	}
}
