package service

import (
	"context"
	"fmt"
	"math/rand"

	"universalnet/internal/embedding"
	"universalnet/internal/graph"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// Topologies names the host families a request may ask for. For torus,
// ring, and expander, M is the processor count; for butterfly and ccc, M is
// the dimension d (their sizes are (d+1)·2^d and d·2^d respectively).
var Topologies = []string{"torus", "ring", "expander", "butterfly", "ccc"}

// maxHostSize bounds served host graphs — requests are user input, and a
// runaway m must fail validation, not allocate.
const maxHostSize = 1 << 16

// maxGuestSize bounds served guest networks.
const maxGuestSize = 1 << 14

// hostEntry is the cached, immutable part of a host: its graph and display
// name. Routers carry per-request mutable state (obs hooks, rng), so a
// fresh router is attached per request.
type hostEntry struct {
	name string
	g    *graph.Graph
}

// hostSize estimates a cached host graph's footprint: adjacency is ~16
// bytes per directed edge plus per-vertex overhead.
func hostSize(he hostEntry) int64 {
	return int64(64*he.g.N()) + 64
}

// validTopology rejects unknown host families and out-of-range sizes.
func validTopology(name string, m int) error {
	switch name {
	case "torus", "ring", "expander":
		if m < 4 || m > maxHostSize {
			return fmt.Errorf("service: %s size m=%d out of range [4,%d]", name, m, maxHostSize)
		}
	case "butterfly", "ccc":
		if m < 2 || m > 12 {
			return fmt.Errorf("service: %s dimension m=%d out of range [2,12]", name, m)
		}
	default:
		return fmt.Errorf("service: unknown topology %q (have %v)", name, Topologies)
	}
	return nil
}

// host returns a Host for the request, consulting the host-graph cache
// before constructing, and always attaching a fresh router.
func (s *Service) host(name string, m int, seed int64) (*universal.Host, error) {
	key := fmt.Sprintf("host|%s|%d|%d", name, m, seed)
	he, err := s.hosts.GetOrCompute(key, func() (hostEntry, error) {
		h, err := buildHost(name, m, seed)
		if err != nil {
			return hostEntry{}, err
		}
		return hostEntry{name: h.Name, g: h.Graph}, nil
	})
	if err != nil {
		return nil, err
	}
	router, err := buildRouter(name, he.g.N())
	if err != nil {
		return nil, err
	}
	return &universal.Host{Name: he.name, Graph: he.g, Router: router}, nil
}

// buildHost constructs the named host from scratch (the cache-miss path).
func buildHost(name string, m int, seed int64) (*universal.Host, error) {
	switch name {
	case "torus":
		return universal.TorusHost(m)
	case "ring":
		return universal.RingHost(m)
	case "expander":
		return universal.ExpanderHost(m, 4, seed)
	case "butterfly":
		return universal.ButterflyHost(m)
	case "ccc":
		return universal.CCCHost(m)
	}
	return nil, fmt.Errorf("service: unknown topology %q", name)
}

// buildRouter returns a fresh per-request router for the named topology on
// a host of n processors.
func buildRouter(name string, n int) (routing.Router, error) {
	if name == "torus" {
		side, err := topology.SideLength(n)
		if err != nil {
			return nil, err
		}
		return &routing.DimensionOrderRouter{N: side, Wrap: true, Mode: routing.MultiPort}, nil
	}
	return &routing.GreedyRouter{Mode: routing.MultiPort}, nil
}

// guest builds the request's deterministic random guest network.
func guest(n, deg int, seed int64) (*graph.Graph, *rand.Rand, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.RandomGuest(rng, n, deg)
	if err != nil {
		return nil, nil, err
	}
	return g, rng, nil
}

// ---------------------------------------------------------------------------
// Simulate

// SimulateRequest asks for a Theorem 2.1 simulation: a random guest of N
// processors (degree GuestDegree, derived from Seed) embedded on the named
// host and run for Steps guest steps. The cache key is the full request
// tuple — identical requests are answered from cache, concurrent identical
// requests compute once.
type SimulateRequest struct {
	Topology    string `json:"topology"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Seed        int64  `json:"seed"`
	Steps       int    `json:"steps,omitempty"`        // default 8
	GuestDegree int    `json:"guest_degree,omitempty"` // default 4
	DeadlineMS  int    `json:"deadline_ms,omitempty"`  // default Config.DefaultDeadline
}

// withDefaults fills optional fields.
func (r SimulateRequest) withDefaults() SimulateRequest {
	if r.Steps == 0 {
		r.Steps = 8
	}
	if r.GuestDegree == 0 {
		r.GuestDegree = 4
	}
	return r
}

// Validate rejects out-of-range requests.
func (r SimulateRequest) Validate() error {
	if err := validTopology(r.Topology, r.M); err != nil {
		return err
	}
	if r.N < 4 || r.N > maxGuestSize {
		return fmt.Errorf("service: n=%d out of range [4,%d]", r.N, maxGuestSize)
	}
	if r.Steps < 1 || r.Steps > 512 {
		return fmt.Errorf("service: steps=%d out of range [1,512]", r.Steps)
	}
	if r.GuestDegree < 2 || r.GuestDegree > 8 {
		return fmt.Errorf("service: guest_degree=%d out of range [2,8]", r.GuestDegree)
	}
	return nil
}

// Key is the coalescing/cache key: the request tuple, nothing else.
func (r SimulateRequest) Key() string {
	return fmt.Sprintf("simulate|%s|%d|%d|%d|%d|%d", r.Topology, r.N, r.M, r.Seed, r.Steps, r.GuestDegree)
}

// SimulateResult reports a completed simulation. Checksum fingerprints the
// reconstructed guest trace, so two runs of one request are provably the
// same computation.
type SimulateResult struct {
	Host         string  `json:"host"`
	GuestSteps   int     `json:"guest_steps"`
	HostSteps    int     `json:"host_steps"`
	RouteSteps   int     `json:"route_steps"`
	ComputeSteps int     `json:"compute_steps"`
	MaxLoad      int     `json:"max_load"`
	Slowdown     float64 `json:"slowdown"`
	Inefficiency float64 `json:"inefficiency"`
	Checksum     uint64  `json:"checksum"`
	Cached       bool    `json:"cached"`
}

// Simulate executes req through admission control and the result cache.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResult, error) {
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	v, cached, err := s.do(ctx, "simulate", req.Key(), req.DeadlineMS, func() (any, error) {
		return s.computeSimulate(req)
	})
	if err != nil {
		return nil, err
	}
	res := v.(SimulateResult)
	res.Cached = cached
	return &res, nil
}

func (s *Service) computeSimulate(req SimulateRequest) (any, error) {
	host, err := s.host(req.Topology, req.M, req.Seed)
	if err != nil {
		return nil, err
	}
	g, rng, err := guest(req.N, req.GuestDegree, req.Seed)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(g, rng)
	es := &universal.EmbeddingSimulator{Host: host, Obs: s.obs, Schedules: s.schedules}
	rep, err := es.Run(comp, req.Steps)
	if err != nil {
		return nil, err
	}
	return SimulateResult{
		Host:         host.Name,
		GuestSteps:   rep.GuestSteps,
		HostSteps:    rep.HostSteps,
		RouteSteps:   rep.RouteSteps,
		ComputeSteps: rep.ComputeSteps,
		MaxLoad:      rep.MaxLoad,
		Slowdown:     rep.Slowdown,
		Inefficiency: rep.Inefficiency,
		Checksum:     rep.Trace.Checksum(),
	}, nil
}

// ---------------------------------------------------------------------------
// Route

// RouteRequest asks for one routing run on the named host: a seeded random
// pattern ("permutation", "hh" with multiplicity H, or "bitreversal" on
// power-of-two hosts), routed by the topology's router through the shared
// schedule cache.
type RouteRequest struct {
	Topology   string `json:"topology"`
	M          int    `json:"m"`
	Seed       int64  `json:"seed"`
	Pattern    string `json:"pattern,omitempty"` // default "permutation"
	H          int    `json:"h,omitempty"`       // default 2 (hh only)
	DeadlineMS int    `json:"deadline_ms,omitempty"`
}

func (r RouteRequest) withDefaults() RouteRequest {
	if r.Pattern == "" {
		r.Pattern = "permutation"
	}
	if r.H == 0 {
		r.H = 2
	}
	return r
}

// Validate rejects out-of-range requests.
func (r RouteRequest) Validate() error {
	if err := validTopology(r.Topology, r.M); err != nil {
		return err
	}
	switch r.Pattern {
	case "permutation", "bitreversal":
	case "hh":
		if r.H < 1 || r.H > 64 {
			return fmt.Errorf("service: h=%d out of range [1,64]", r.H)
		}
	default:
		return fmt.Errorf("service: unknown pattern %q (permutation|hh|bitreversal)", r.Pattern)
	}
	return nil
}

// Key is the coalescing/cache key.
func (r RouteRequest) Key() string {
	return fmt.Sprintf("route|%s|%d|%d|%s|%d", r.Topology, r.M, r.Seed, r.Pattern, r.H)
}

// RouteResult reports a completed routing run.
type RouteResult struct {
	Host      string `json:"host"`
	Pattern   string `json:"pattern"`
	Packets   int    `json:"packets"`
	Steps     int    `json:"steps"`
	Delivered int    `json:"delivered"`
	MaxQueue  int    `json:"max_queue"`
	TotalHops int    `json:"total_hops"`
	Cached    bool   `json:"cached"`
}

// Route executes req through admission control and the result cache.
func (s *Service) Route(ctx context.Context, req RouteRequest) (*RouteResult, error) {
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	v, cached, err := s.do(ctx, "route", req.Key(), req.DeadlineMS, func() (any, error) {
		return s.computeRoute(req)
	})
	if err != nil {
		return nil, err
	}
	res := v.(RouteResult)
	res.Cached = cached
	return &res, nil
}

func (s *Service) computeRoute(req RouteRequest) (any, error) {
	host, err := s.host(req.Topology, req.M, req.Seed)
	if err != nil {
		return nil, err
	}
	n := host.Graph.N()
	rng := rand.New(rand.NewSource(req.Seed))
	var p *routing.Problem
	switch req.Pattern {
	case "permutation":
		p = routing.RandomPermutation(rng, n)
	case "hh":
		p = routing.RandomHH(rng, n, req.H)
	case "bitreversal":
		d := 0
		for 1<<d < n {
			d++
		}
		if 1<<d != n {
			return nil, fmt.Errorf("service: bitreversal needs a power-of-two host, %s has %d", host.Name, n)
		}
		p = routing.BitReversal(d)
	}
	router := &routing.CachedRouter{Inner: host.Router, Cache: s.schedules, Obs: s.obs}
	res, err := router.Route(host.Graph, p)
	if err != nil {
		return nil, err
	}
	return RouteResult{
		Host:      host.Name,
		Pattern:   req.Pattern,
		Packets:   len(p.Pairs),
		Steps:     res.Steps,
		Delivered: res.Delivered,
		MaxQueue:  res.MaxQueue,
		TotalHops: res.TotalHops,
	}, nil
}

// ---------------------------------------------------------------------------
// Embed

// EmbedRequest asks for a static embedding of a random guest (N processors,
// degree GuestDegree, from Seed) into the named host under the balanced
// i mod m placement, reporting the §1 embedding quality measures.
type EmbedRequest struct {
	Topology    string `json:"topology"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Seed        int64  `json:"seed"`
	GuestDegree int    `json:"guest_degree,omitempty"` // default 4
	DeadlineMS  int    `json:"deadline_ms,omitempty"`
}

func (r EmbedRequest) withDefaults() EmbedRequest {
	if r.GuestDegree == 0 {
		r.GuestDegree = 4
	}
	return r
}

// Validate rejects out-of-range requests.
func (r EmbedRequest) Validate() error {
	if err := validTopology(r.Topology, r.M); err != nil {
		return err
	}
	if r.N < 4 || r.N > maxGuestSize {
		return fmt.Errorf("service: n=%d out of range [4,%d]", r.N, maxGuestSize)
	}
	if r.GuestDegree < 2 || r.GuestDegree > 8 {
		return fmt.Errorf("service: guest_degree=%d out of range [2,8]", r.GuestDegree)
	}
	return nil
}

// Key is the coalescing/cache key.
func (r EmbedRequest) Key() string {
	return fmt.Sprintf("embed|%s|%d|%d|%d|%d", r.Topology, r.N, r.M, r.Seed, r.GuestDegree)
}

// EmbedResult reports the embedding quality measures of §1: load, dilation,
// congestion, and the slowdown lower bound they imply.
type EmbedResult struct {
	Host               string `json:"host"`
	HostSize           int    `json:"host_size"`
	GuestEdges         int    `json:"guest_edges"`
	Load               int    `json:"load"`
	Dilation           int    `json:"dilation"`
	Congestion         int    `json:"congestion"`
	SlowdownLowerBound int    `json:"slowdown_lower_bound"`
	Cached             bool   `json:"cached"`
}

// Embed executes req through admission control and the result cache.
func (s *Service) Embed(ctx context.Context, req EmbedRequest) (*EmbedResult, error) {
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	v, cached, err := s.do(ctx, "embed", req.Key(), req.DeadlineMS, func() (any, error) {
		return s.computeEmbed(req)
	})
	if err != nil {
		return nil, err
	}
	res := v.(EmbedResult)
	res.Cached = cached
	return &res, nil
}

func (s *Service) computeEmbed(req EmbedRequest) (any, error) {
	host, err := s.host(req.Topology, req.M, req.Seed)
	if err != nil {
		return nil, err
	}
	g, _, err := guest(req.N, req.GuestDegree, req.Seed)
	if err != nil {
		return nil, err
	}
	m := host.Graph.N()
	f := make([]int, g.N())
	for i := range f {
		f[i] = i % m
	}
	emb, err := embedding.New(g, host.Graph, f)
	if err != nil {
		return nil, err
	}
	return EmbedResult{
		Host:               host.Name,
		HostSize:           m,
		GuestEdges:         len(g.Edges()),
		Load:               emb.Load(),
		Dilation:           emb.Dilation(),
		Congestion:         emb.Congestion(),
		SlowdownLowerBound: emb.SlowdownLowerBound(),
	}, nil
}
