package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// maxBodyBytes bounds a request body; the typed requests are tiny.
const maxBodyBytes = 1 << 16

// Handler mounts the service as JSON-over-HTTP under /v1/: POST
// /v1/simulate, /v1/route, /v1/embed and GET /v1/status, /v1/health.
// Error mapping: 400 invalid request, 429 admission-control rejection
// (ErrOverloaded), 502 peer unreachable without local fallback
// (cluster.ErrPeerUnreachable), 503 draining (ErrClosed), 504 per-request
// deadline, 500 engine errors.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(cluster.HealthPath, handleHealth(""))
	mux.HandleFunc("/v1/simulate", post(s, func(ctx context.Context, req SimulateRequest) (*SimulateResult, error) {
		return s.Simulate(ctx, req)
	}))
	mux.HandleFunc("/v1/route", post(s, func(ctx context.Context, req RouteRequest) (*RouteResult, error) {
		return s.Route(ctx, req)
	}))
	mux.HandleFunc("/v1/embed", post(s, func(ctx context.Context, req EmbedRequest) (*EmbedResult, error) {
		return s.Embed(ctx, req)
	}))
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"), s.encodeErrs)
			return
		}
		writeJSON(w, http.StatusOK, s.Status(), s.encodeErrs)
	})
	return mux
}

// validated is implemented by every request type; post uses it to separate
// 400s from engine failures.
type validated interface {
	Validate() error
}

// post adapts one typed service method to an HTTP handler, timing the
// decode and encode stages onto the request's timings (when the Telemetry
// middleware installed them).
func post[Req validated, Res any](s *Service, call func(context.Context, Req) (*Res, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST only"), s.encodeErrs)
			return
		}
		rt := timingsFrom(r.Context())
		var req Req
		body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		decodeStart := time.Now()
		err := dec.Decode(&req)
		rt.record(stageDecode, decodeStart)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err), s.encodeErrs)
			return
		}
		res, err := call(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err, s.encodeErrs)
			return
		}
		encodeStart := time.Now()
		writeJSON(w, http.StatusOK, res, s.encodeErrs)
		rt.record(stageEncode, encodeStart)
	}
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, cluster.ErrPeerUnreachable):
		return http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error, encodeErrs *obs.Counter) {
	writeJSON(w, code, apiError{Error: err.Error()}, encodeErrs)
}

// writeJSON encodes v onto w. Encode failures (client hangup mid-response,
// unmarshalable value) cannot be reported to the client — the status line is
// already written — so they are counted on encodeErrs (nil-safe) and logged
// once per error class instead of being silently discarded.
func writeJSON(w http.ResponseWriter, code int, v any, encodeErrs *obs.Counter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		encodeErrs.Inc()
		logEncodeErrorOnce(err)
	}
}

// Drain wraps next so that once draining() reports true every request is
// answered 503 immediately — the serve command flips this during graceful
// shutdown so in-flight keep-alive connections cannot race the listener
// teardown with new work.
func Drain(draining func() bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining() {
			w.Header().Set("Connection", "close")
			writeError(w, http.StatusServiceUnavailable, ErrClosed, nil)
			return
		}
		next.ServeHTTP(w, r)
	})
}
