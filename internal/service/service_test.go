package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"universalnet/internal/obs"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestSimulateEndToEnd(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	req := SimulateRequest{Topology: "torus", N: 64, M: 16, Seed: 7, Steps: 4}
	res, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first request reported cached")
	}
	if res.GuestSteps != 4 || res.HostSteps <= 0 || res.Slowdown <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if res.MaxLoad != 4 { // 64 guests on 16 hosts, balanced
		t.Errorf("max_load = %d, want 4", res.MaxLoad)
	}
	// The identical request is answered from cache with the identical
	// computation (checksum pins determinism).
	res2, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("second identical request not served from cache")
	}
	if res2.Checksum != res.Checksum || res2.HostSteps != res.HostSteps {
		t.Errorf("cached result differs: %+v vs %+v", res2, res)
	}
	// A different seed is a different computation.
	req.Seed = 8
	res3, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Error("distinct request served from cache")
	}
}

func TestRouteAndEmbedEndToEnd(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	ctx := context.Background()
	rres, err := s.Route(ctx, RouteRequest{Topology: "butterfly", M: 3, Seed: 1, Pattern: "permutation"})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Delivered != rres.Packets || rres.Steps <= 0 {
		t.Errorf("route result implausible: %+v", rres)
	}
	eres, err := s.Embed(ctx, EmbedRequest{Topology: "torus", N: 64, M: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if eres.Load != 4 || eres.Dilation <= 0 || eres.Congestion <= 0 {
		t.Errorf("embed result implausible: %+v", eres)
	}
	// hh pattern and bitreversal-on-non-power-of-two behavior.
	if _, err := s.Route(ctx, RouteRequest{Topology: "ring", M: 12, Seed: 1, Pattern: "hh", H: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Route(ctx, RouteRequest{Topology: "torus", M: 36, Seed: 1, Pattern: "bitreversal"}); err == nil {
		t.Error("bitreversal on 36-node torus should fail")
	}
}

func TestValidation(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []error{
		func() error {
			_, err := s.Simulate(ctx, SimulateRequest{Topology: "klein-bottle", N: 64, M: 16})
			return err
		}(),
		func() error {
			_, err := s.Simulate(ctx, SimulateRequest{Topology: "torus", N: 1 << 20, M: 16})
			return err
		}(),
		func() error {
			_, err := s.Simulate(ctx, SimulateRequest{Topology: "torus", N: 64, M: 16, Steps: 10000})
			return err
		}(),
		func() error {
			_, err := s.Route(ctx, RouteRequest{Topology: "torus", M: 16, Pattern: "scenic"})
			return err
		}(),
		func() error { _, err := s.Embed(ctx, EmbedRequest{Topology: "torus", N: 64, M: 1 << 20}); return err }(),
	}
	for i, err := range cases {
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}
	// Validation failures never enter the queue.
	if got := s.Status().Accepted; got != 0 {
		t.Errorf("accepted = %d after validation-only traffic, want 0", got)
	}
}

// TestSingleflightDedup is the ISSUE's dedup contract at the service layer:
// N concurrent identical requests → exactly one computation (one result-
// cache miss), everyone gets the same answer. Run with -race.
func TestSingleflightDedup(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 128})
	req := SimulateRequest{Topology: "expander", N: 128, M: 32, Seed: 11, Steps: 6}
	const N = 32
	results := make([]*SimulateResult, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.Simulate(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()
	var want uint64
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want == 0 {
			want = results[i].Checksum
		}
		if results[i].Checksum != want {
			t.Fatalf("request %d diverged: checksum %d vs %d", i, results[i].Checksum, want)
		}
	}
	st := s.Status()
	if st.Cache.Misses != 1 {
		t.Errorf("result-cache misses = %d for %d identical concurrent requests, want exactly 1 computation", st.Cache.Misses, N)
	}
	if st.Cache.Hits+st.Cache.Coalesced != N-1 {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d followers",
			st.Cache.Hits, st.Cache.Coalesced, st.Cache.Hits+st.Cache.Coalesced, N-1)
	}
}

// TestAdmissionControl pins the 429 path: with one worker wedged and a
// one-slot queue occupied, the next submission is rejected immediately.
func TestAdmissionControl(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	running := make(chan struct{})
	// Wedge the worker.
	if err := s.submit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	// Fill the queue slot.
	if err := s.submit(func() {}); err != nil {
		t.Fatal(err)
	}
	// Admission control must now fail fast, including for a real request.
	if err := s.submit(func() {}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit on full queue: %v, want ErrOverloaded", err)
	}
	_, err := s.Simulate(context.Background(), SimulateRequest{Topology: "torus", N: 16, M: 4, Seed: 1})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Simulate on full queue: %v, want ErrOverloaded", err)
	}
	st := s.Status()
	if st.Rejected < 2 {
		t.Errorf("rejected = %d, want >= 2", st.Rejected)
	}
	close(block)
}

func TestDeadline(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	defer close(block)
	running := make(chan struct{})
	if err := s.submit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	// This request sits behind the wedged worker past its 20ms deadline.
	_, err := s.Simulate(context.Background(),
		SimulateRequest{Topology: "torus", N: 16, M: 4, Seed: 1, DeadlineMS: 20})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := s.Status().DeadlineExceeded; got != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", got)
	}
}

// TestGracefulDrain: Close rejects new work with ErrClosed, but queued work
// completes before Close returns.
func TestGracefulDrain(t *testing.T) {
	reg := obs.New()
	s := New(Config{Workers: 1, QueueDepth: 8, Obs: reg})
	gate := make(chan struct{})
	running := make(chan struct{})
	done := make(chan struct{}, 8)
	if err := s.submit(func() { close(running); <-gate; done <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	<-running
	for i := 0; i < 3; i++ {
		if err := s.submit(func() { done <- struct{}{} }); err != nil {
			t.Fatal(err)
		}
	}
	closeRet := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closeRet <- s.Close(ctx)
	}()
	// Draining must flip promptly and new submissions must bounce.
	waitFor(t, s.Draining, "service did not start draining")
	if err := s.submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit during drain: %v, want ErrClosed", err)
	}
	if _, err := s.Simulate(context.Background(), SimulateRequest{Topology: "torus", N: 16, M: 4, Seed: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Simulate during drain: %v, want ErrClosed", err)
	}
	close(gate) // let the wedged job and the queue drain
	if err := <-closeRet; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(done) != 4 {
		t.Errorf("%d of 4 queued jobs ran during drain, want all", len(done))
	}
	// Close is idempotent.
	if err := s.Close(context.Background()); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSharedScheduleCache: two different requests over the same host and
// relation shape share routing schedules through the service-wide cache.
func TestSharedScheduleCache(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	ctx := context.Background()
	// Same topology/m/seed → same host graph and same guest → the per-step
	// relation is identical; the second request's simulation replays the
	// first's schedule from the shared cache.
	if _, err := s.Simulate(ctx, SimulateRequest{Topology: "torus", N: 64, M: 16, Seed: 5, Steps: 4}); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := s.Status().Schedules.Misses
	if missesAfterFirst == 0 {
		t.Fatal("first simulate recorded no schedule-cache misses")
	}
	// Different Steps → different result-cache key, same schedule.
	if _, err := s.Simulate(ctx, SimulateRequest{Topology: "torus", N: 64, M: 16, Seed: 5, Steps: 6}); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.Schedules.Misses != missesAfterFirst {
		t.Errorf("second simulate recomputed the schedule: misses %d → %d", missesAfterFirst, st.Schedules.Misses)
	}
	if st.Schedules.Hits == 0 {
		t.Error("schedule cache recorded no hits across requests")
	}
	if st.Hosts.Hits == 0 {
		t.Error("host cache recorded no hits across requests")
	}
}
