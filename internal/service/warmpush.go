package service

import (
	"context"
	"net/http"
	"sync"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// WarmPusher repairs the cache asymmetry a local fallback leaves behind.
// When the owner of a key is unreachable and this node computes the answer
// itself, the owner's cache stays cold: the next request for that key —
// routed to the now-recovered owner — pays the full compute again. The
// pusher re-forwards the original request to the owner in the background
// as soon as the owner recovers (each attempt doubles as the breaker's
// probe), so the owner computes (and caches) the result off the client's
// critical path. The push is the same idempotent POST the
// client sent; at worst the owner does one redundant computation.
//
// Pushes ride a bounded queue: a full queue drops the push (counter
// cluster.warm_push_dropped) rather than stall the serving path. Successful
// pushes increment cluster.warm_pushes; pushes that exhaust their attempts
// increment cluster.warm_push_failed.
type WarmPusher struct {
	node        *cluster.Node
	obs         *obs.Registry
	retryEvery  time.Duration
	maxAttempts int

	queue    chan warmPush
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// warmPush is one queued owner-side cache warm: the request exactly as the
// client sent it, plus the owner it should have gone to.
type warmPush struct {
	owner string
	path  string
	body  []byte
}

// WarmPushOptions tunes a WarmPusher. The zero value gives sane serving
// defaults; tests shrink RetryEvery to keep recovery polling fast.
type WarmPushOptions struct {
	// QueueDepth bounds the pending-push queue (0 = 64). Overflow drops.
	QueueDepth int
	// RetryEvery is the pause between attempts while the owner is still
	// unreachable or rejecting (0 = 250ms).
	RetryEvery time.Duration
	// MaxAttempts bounds how long one push chases a recovering owner before
	// giving up (0 = 120 attempts — 30s at the default cadence).
	MaxAttempts int
	// Obs receives the warm-push counters (nil = none).
	Obs *obs.Registry
}

// NewWarmPusher starts the single background worker that drains the push
// queue. Close stops it; a nil pusher is a no-op everywhere.
func NewWarmPusher(node *cluster.Node, opts WarmPushOptions) *WarmPusher {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.RetryEvery <= 0 {
		opts.RetryEvery = 250 * time.Millisecond
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 120
	}
	p := &WarmPusher{
		node:        node,
		obs:         opts.Obs,
		retryEvery:  opts.RetryEvery,
		maxAttempts: opts.MaxAttempts,
		queue:       make(chan warmPush, opts.QueueDepth),
		stop:        make(chan struct{}),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

// Enqueue schedules a warm push of body to owner's path. Never blocks: a
// full queue (or a closed pusher) drops the push and counts the drop. Safe
// on a nil receiver so call sites need no guard.
func (p *WarmPusher) Enqueue(owner, path string, body []byte) {
	if p == nil {
		return
	}
	// The serving path may reuse the body buffer after the handler returns;
	// the queue outlives the request, so it keeps its own copy.
	cp := make([]byte, len(body))
	copy(cp, body)
	select {
	case p.queue <- warmPush{owner: owner, path: path, body: cp}:
	default:
		p.obs.Counter("cluster.warm_push_dropped").Inc()
	}
}

// Close stops the worker and waits for it to exit. Queued-but-unstarted
// pushes are abandoned: a dying node has no business warming peers.
func (p *WarmPusher) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

func (p *WarmPusher) run() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case push := <-p.queue:
			p.deliver(push)
		}
	}
}

// deliver chases one push until the owner accepts it, the attempt budget
// runs out, or the pusher closes. Each attempt goes straight to Forward and
// lets the owner's breaker arbitrate: a truly open breaker rejects
// instantly (no wire traffic), an elapsed open-timeout resolves to
// half-open with this push as the probe, and a successful push recloses
// the breaker for foreground traffic too. Waiting for BreakerState to read
// closed instead would deadlock: State never resolves the timeout, only an
// attempt does. 503/429 answers mean the owner is up but draining or
// shedding, which the same retry cadence rides out.
func (p *WarmPusher) deliver(push warmPush) {
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if attempt > 0 && !p.pause() {
			return
		}
		resp, err := p.node.Forward(context.Background(), push.owner, push.path, push.body)
		if err != nil {
			// Breaker rejection or transport failure; wait for recovery.
			continue
		}
		switch {
		case resp.Status == http.StatusServiceUnavailable || resp.Status == http.StatusTooManyRequests:
			// Up but draining/shedding: retry.
		case resp.Status >= 200 && resp.Status < 300:
			p.obs.Counter("cluster.warm_pushes").Inc()
			return
		default:
			// A definitive answer (4xx/5xx): retrying would re-send the same
			// bytes to the same conclusion.
			p.obs.Counter("cluster.warm_push_failed").Inc()
			return
		}
	}
	p.obs.Counter("cluster.warm_push_failed").Inc()
}

// pause sleeps one retry interval; false means the pusher is closing.
func (p *WarmPusher) pause() bool {
	select {
	case <-p.stop:
		return false
	case <-time.After(p.retryEvery):
		return true
	}
}
