package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// Response headers the cluster layer stamps on every /v1 answer, so a
// client (or an operator with curl) can see exactly how a request was
// routed without consulting logs.
const (
	// HeaderNode names the node that computed the response body.
	HeaderNode = "X-Uninet-Node"
	// HeaderOwner names the consistent-hash owner of the request's cache
	// key at routing time.
	HeaderOwner = "X-Uninet-Owner"
	// HeaderRoute is how the request was served: "local" (this node owns
	// the key, or the request arrived pre-forwarded), "forwarded" (relayed
	// to the owner), or "fallback" (owner unreachable or rejecting; served
	// locally as a correct-but-uncached degradation).
	HeaderRoute = "X-Uninet-Route"
	// HeaderVia names the node that relayed a forwarded response.
	HeaderVia = "X-Uninet-Via"
)

// KeyFor computes the canonical cache key of an encoded /v1 request body
// for kind "simulate", "route", or "embed" — the same key the serving
// node's result cache uses, which makes it the unit of cluster ownership.
// Invalid bodies return an error; the caller then serves locally so the
// normal handler produces the right 400.
func KeyFor(kind string, body []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	switch kind {
	case "simulate":
		var req SimulateRequest
		if err := dec.Decode(&req); err != nil {
			return "", err
		}
		req = req.withDefaults()
		if err := req.Validate(); err != nil {
			return "", err
		}
		return req.Key(), nil
	case "route":
		var req RouteRequest
		if err := dec.Decode(&req); err != nil {
			return "", err
		}
		req = req.withDefaults()
		if err := req.Validate(); err != nil {
			return "", err
		}
		return req.Key(), nil
	case "embed":
		var req EmbedRequest
		if err := dec.Decode(&req); err != nil {
			return "", err
		}
		req = req.withDefaults()
		if err := req.Validate(); err != nil {
			return "", err
		}
		return req.Key(), nil
	}
	return "", fmt.Errorf("service: unknown request kind %q", kind)
}

// ClusterOptions tunes the cluster handler.
type ClusterOptions struct {
	// NoLocalFallback disables serving locally when the owner is
	// unreachable: forwarding failures surface as 502 instead of a
	// degraded-but-correct local answer. For debugging and tests that
	// need the failure visible.
	NoLocalFallback bool
	// WarmPusher, when non-nil, re-forwards every local-fallback request to
	// its owner in the background once the owner recovers, so the owner's
	// cache warms off the client path. See WarmPusher.
	WarmPusher *WarmPusher
}

// ClusterStatusDoc is /v1/status in cluster mode: the node's own service
// status plus the peer-aware cluster block.
type ClusterStatusDoc struct {
	Status
	Cluster cluster.Status `json:"cluster"`
}

// ClusterHandler wraps the /v1 service with consistent-hash request
// routing: each request's cache key has one owner under the current
// membership; non-owners forward to the owner (per-hop deadlines, bounded
// retries, circuit breaker — see internal/cluster) and degrade to local
// compute when the owner is unreachable. A locally computed answer is
// always correct — it is the same deterministic function of the request —
// just a cache miss: the cluster's version of the paper's smaller-network,
// bounded-slowdown guarantee.
//
// Requests carrying cluster.ForwardedHeader are always served locally
// (forwards are one hop, so rehash races cannot loop), and /v1/status
// becomes peer-aware.
func ClusterHandler(s *Service, node *cluster.Node, opts ClusterOptions) http.Handler {
	inner := Handler(s)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case cluster.HealthPath:
			handleHealth(node.Self())(w, r)
			return
		case "/v1/status":
			if r.Method != http.MethodGet {
				writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"), s.encodeErrs)
				return
			}
			w.Header().Set(HeaderNode, node.Self())
			writeJSON(w, http.StatusOK, ClusterStatusDoc{Status: s.Status(), Cluster: node.Status()}, s.encodeErrs)
			return
		case "/v1/simulate", "/v1/route", "/v1/embed":
			if r.Method != http.MethodPost {
				writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST only"), s.encodeErrs)
				return
			}
			routeRequest(s, node, opts, inner, w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// routeRequest is the ownership/forward/fallback decision for one typed
// POST.
func routeRequest(s *Service, node *cluster.Node, opts ClusterOptions, inner http.Handler, w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Path[len("/v1/"):]
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err), s.encodeErrs)
		return
	}
	self := node.Self()
	w.Header().Set(HeaderNode, self)

	// Pre-forwarded requests are served locally unconditionally: the
	// sender already resolved ownership, and one hop is the maximum.
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		w.Header().Set(HeaderOwner, self)
		serveLocal(inner, w, r, body, "local")
		return
	}

	key, err := KeyFor(kind, body)
	if err != nil {
		// Let the normal handler produce the canonical 400.
		w.Header().Set(HeaderOwner, self)
		serveLocal(inner, w, r, body, "local")
		return
	}
	owner := node.Owner(key)
	if owner == "" || owner == self {
		w.Header().Set(HeaderOwner, self)
		node.CountServedLocal()
		serveLocal(inner, w, r, body, "local")
		return
	}
	w.Header().Set(HeaderOwner, owner)

	// The forward hop is a stage of this request's trace: the hop's outgoing
	// TraceHeader names the pre-drawn forward span as parent, so the owner's
	// root span nests under it in the joined tree.
	rt := timingsFrom(r.Context())
	fctx := r.Context()
	if rt != nil && rt.traced {
		fctx = obs.ContextWithSpan(fctx, obs.SpanContext{Trace: rt.sc.Trace, Span: rt.forward})
	}
	forwardStart := time.Now()
	resp, err := node.Forward(fctx, owner, r.URL.Path, body)
	rt.record(stageForward, forwardStart)
	if resp != nil {
		// Split the winning attempt's hop into dial/send/wait, with starts
		// derived by stacking the phases from the hop's start.
		startUS := forwardStart.UnixMicro()
		rt.recordUS(stageForwardDial, startUS, resp.DialUS)
		rt.recordUS(stageForwardSend, startUS+resp.DialUS, resp.SendUS)
		rt.recordUS(stageForwardWait, startUS+resp.DialUS+resp.SendUS, resp.WaitUS)
	}
	if err != nil {
		// Owner unreachable (breaker open or retries exhausted).
		if opts.NoLocalFallback {
			writeError(w, statusFor(err), err, s.encodeErrs)
			return
		}
		node.CountFailover()
		opts.WarmPusher.Enqueue(owner, r.URL.Path, body)
		serveLocal(inner, w, r, body, "fallback")
		return
	}
	if resp.Status == http.StatusServiceUnavailable || resp.Status == http.StatusTooManyRequests {
		// The owner answered but is draining or overloaded. This node has
		// capacity — compute locally rather than bounce the rejection to
		// the client.
		if opts.NoLocalFallback {
			relayResponse(w, resp, owner, self, rt)
			return
		}
		node.CountFailover()
		opts.WarmPusher.Enqueue(owner, r.URL.Path, body)
		serveLocal(inner, w, r, body, "fallback")
		return
	}
	relayResponse(w, resp, owner, self, rt)
}

// serveLocal replays the buffered body through this node's own /v1 handler.
func serveLocal(inner http.Handler, w http.ResponseWriter, r *http.Request, body []byte, route string) {
	w.Header().Set(HeaderRoute, route)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	inner.ServeHTTP(w, r2)
}

// relayResponse copies the owner's answer to the client verbatim, stamped
// with the routing headers. The body write is this route's encode stage.
func relayResponse(w http.ResponseWriter, resp *cluster.ForwardResponse, owner, self string, rt *reqTimings) {
	w.Header().Set(HeaderNode, owner)
	w.Header().Set(HeaderVia, self)
	w.Header().Set(HeaderRoute, "forwarded")
	if resp.ContentType != "" {
		w.Header().Set("Content-Type", resp.ContentType)
	}
	encodeStart := time.Now()
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
	rt.record(stageEncode, encodeStart)
}

// handleHealth is the trivial liveness probe heartbeats hit. node may be ""
// (single-node mode).
func handleHealth(nodeName string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"), nil)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "node": nodeName}, nil)
	}
}
