package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// clusterTestNode is one in-process serving node: its own Service, cluster
// Node, and HTTP server, gated by a drain flag exactly like runServe.
type clusterTestNode struct {
	addr     string
	svc      *Service
	node     *cluster.Node
	srv      *httptest.Server
	reg      *obs.Registry
	draining atomic.Bool
}

// startTestCluster boots n nodes that know each other as peers. Heartbeat
// loops are not started — health transitions are driven by breakers and
// (in tests that need them) explicit HeartbeatOnce calls, keeping the
// tests deterministic.
func startTestCluster(t *testing.T, n int, opts ClusterOptions) []*clusterTestNode {
	t.Helper()
	return startTestClusterWith(t, n, func(*clusterTestNode) ClusterOptions { return opts })
}

// startTestClusterWith is startTestCluster with per-node options: optsFor
// runs after the node's Service and cluster.Node exist, so a test can hang
// node-specific machinery (e.g. a WarmPusher over tn.node) off each one.
func startTestClusterWith(t *testing.T, n int, optsFor func(tn *clusterTestNode) ClusterOptions) []*clusterTestNode {
	t.Helper()
	nodes := make([]*clusterTestNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		nodes[i] = &clusterTestNode{srv: httptest.NewUnstartedServer(nil)}
		addrs[i] = nodes[i].srv.Listener.Addr().String()
		nodes[i].addr = addrs[i]
	}
	for i, tn := range nodes {
		peers := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		tn.reg = obs.New()
		tn.svc = New(Config{Workers: 2, QueueDepth: 64, Obs: tn.reg})
		var err error
		tn.node, err = cluster.NewNode(cluster.Config{
			Self:           tn.addr,
			Peers:          peers,
			Retries:        1,
			BackoffBase:    time.Millisecond,
			BackoffMax:     4 * time.Millisecond,
			ForwardTimeout: 5 * time.Second,
			Obs:            tn.reg,
			Breaker:        cluster.BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Minute},
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.srv.Config.Handler = Drain(tn.draining.Load, ClusterHandler(tn.svc, tn.node, optsFor(tn)))
		tn.srv.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.shutdown()
		}
	})
	return nodes
}

// shutdown tears one node down: HTTP server first (blocks until in-flight
// handlers finish), then the service drain. Idempotent.
func (tn *clusterTestNode) shutdown() {
	tn.srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tn.svc.Close(ctx)
}

// simulateBody builds a /v1/simulate body for the given seed.
func simulateBody(seed int64) []byte {
	b, _ := json.Marshal(map[string]any{
		"topology": "ring", "n": 16, "m": 8, "seed": seed, "steps": 2,
	})
	return b
}

// seedOwnedBy scans seeds until one's simulate key is owned by want under
// owner's membership view.
func seedOwnedBy(t *testing.T, owner *cluster.Node, want string) int64 {
	t.Helper()
	for seed := int64(1); seed < 200; seed++ {
		key, err := KeyFor("simulate", simulateBody(seed))
		if err != nil {
			t.Fatal(err)
		}
		if owner.Owner(key) == want {
			return seed
		}
	}
	t.Fatal("no seed in 1..200 owned by the wanted node — ring badly skewed")
	return 0
}

// postNode POSTs body to the node and returns status, response bytes, and
// headers.
func postNode(t *testing.T, addr string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", addr, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// checksumOf extracts the simulation checksum from a response body.
func checksumOf(t *testing.T, body []byte) uint64 {
	t.Helper()
	var res struct {
		Checksum uint64 `json:"checksum"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return res.Checksum
}

// TestClusterForwarding: a request arriving at a non-owner is forwarded to
// the owner, stamped with routing headers, and returns the same
// deterministic result the owner serves directly.
func TestClusterForwarding(t *testing.T) {
	nodes := startTestCluster(t, 2, ClusterOptions{})
	a, b := nodes[0], nodes[1]
	seed := seedOwnedBy(t, a.node, b.addr)
	body := simulateBody(seed)

	status, respA, hdr := postNode(t, a.addr, body)
	if status != http.StatusOK {
		t.Fatalf("status %d via non-owner, want 200 (%s)", status, respA)
	}
	if hdr.Get(HeaderRoute) != "forwarded" {
		t.Errorf("route %q, want forwarded", hdr.Get(HeaderRoute))
	}
	if hdr.Get(HeaderOwner) != b.addr || hdr.Get(HeaderNode) != b.addr {
		t.Errorf("owner/node headers %q/%q, want both %q", hdr.Get(HeaderOwner), hdr.Get(HeaderNode), b.addr)
	}
	if hdr.Get(HeaderVia) != a.addr {
		t.Errorf("via %q, want %q", hdr.Get(HeaderVia), a.addr)
	}

	// Direct to the owner: local route, identical checksum.
	status, respB, hdr := postNode(t, b.addr, body)
	if status != http.StatusOK {
		t.Fatalf("status %d at owner, want 200", status)
	}
	if hdr.Get(HeaderRoute) != "local" {
		t.Errorf("owner route %q, want local", hdr.Get(HeaderRoute))
	}
	if checksumOf(t, respA) != checksumOf(t, respB) {
		t.Errorf("forwarded and direct answers disagree: %s vs %s", respA, respB)
	}
	if st := a.node.Status(); st.Forwarded == 0 {
		t.Error("forwarded counter not bumped on the relay node")
	}
	// The owner computed once; the forwarded answer populated its cache,
	// so the direct request was a cache hit.
	var res struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(respB, &res); err != nil || !res.Cached {
		t.Errorf("owner's second answer not cached: %s (err %v)", respB, err)
	}
}

// TestClusterFallbackOnDeadOwner: with the owner SIGKILL-equivalent (server
// closed), the non-owner must still answer 200 by computing locally, count
// the failover, and eventually open the owner's breaker.
func TestClusterFallbackOnDeadOwner(t *testing.T) {
	nodes := startTestCluster(t, 2, ClusterOptions{})
	a, b := nodes[0], nodes[1]
	seed := seedOwnedBy(t, a.node, b.addr)
	body := simulateBody(seed)

	b.srv.Close() // the owner dies

	status, resp, hdr := postNode(t, a.addr, body)
	if status != http.StatusOK {
		t.Fatalf("status %d with dead owner, want 200 via local fallback (%s)", status, resp)
	}
	if hdr.Get(HeaderRoute) != "fallback" {
		t.Errorf("route %q, want fallback", hdr.Get(HeaderRoute))
	}
	if hdr.Get(HeaderNode) != a.addr || hdr.Get(HeaderOwner) != b.addr {
		t.Errorf("node/owner headers %q/%q, want %q/%q", hdr.Get(HeaderNode), hdr.Get(HeaderOwner), a.addr, b.addr)
	}
	st := a.node.Status()
	if st.FailoverLocal == 0 {
		t.Error("failover_local not counted")
	}
	// Two transport failures (Retries=1) reach the threshold: breaker open.
	if got := a.node.BreakerState(b.addr); got != cluster.BreakerOpen {
		t.Errorf("breaker %s after failed forward, want open", got)
	}
	// Next request fails fast into fallback without new attempts.
	attempts := a.reg.Counter("cluster.forward_attempts").Value()
	if status, _, hdr = postNode(t, a.addr, body); status != http.StatusOK || hdr.Get(HeaderRoute) != "fallback" {
		t.Fatalf("second fallback: status %d route %q", status, hdr.Get(HeaderRoute))
	}
	if got := a.reg.Counter("cluster.forward_attempts").Value(); got != attempts {
		t.Errorf("open breaker still attempting forwards (%d → %d)", attempts, got)
	}
}

// TestClusterNoFallback502: with local fallback disabled, an unreachable
// owner surfaces as an explicit 502, distinct from 503 (draining) and 429
// (overloaded).
func TestClusterNoFallback502(t *testing.T) {
	nodes := startTestCluster(t, 2, ClusterOptions{NoLocalFallback: true})
	a, b := nodes[0], nodes[1]
	seed := seedOwnedBy(t, a.node, b.addr)
	b.srv.Close()

	status, resp, _ := postNode(t, a.addr, simulateBody(seed))
	if status != http.StatusBadGateway {
		t.Fatalf("status %d with dead owner and no fallback, want 502 (%s)", status, resp)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(resp, &apiErr); err != nil || apiErr.Error == "" {
		t.Errorf("502 body not the error envelope: %s", resp)
	}
}

// TestClusterDrainForwardsTo503Fallback: a draining owner answers forwarded
// requests 503; the relay node detects it and degrades to local compute, so
// the client still sees 200.
func TestClusterDrainFallback(t *testing.T) {
	nodes := startTestCluster(t, 2, ClusterOptions{})
	a, b := nodes[0], nodes[1]
	seed := seedOwnedBy(t, a.node, b.addr)
	body := simulateBody(seed)

	b.draining.Store(true) // B rejects everything with 503 from now on

	status, resp, hdr := postNode(t, a.addr, body)
	if status != http.StatusOK {
		t.Fatalf("status %d with draining owner, want 200 (%s)", status, resp)
	}
	if hdr.Get(HeaderRoute) != "fallback" {
		t.Errorf("route %q, want fallback", hdr.Get(HeaderRoute))
	}
	// Direct clients of the draining node get the explicit 503.
	status, _, _ = postNode(t, b.addr, body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining node answered %d directly, want 503", status)
	}
	// The drain is an HTTP response, not a transport failure: the breaker
	// stays closed, ready for the node's return.
	if got := a.node.BreakerState(b.addr); got != cluster.BreakerClosed {
		t.Errorf("breaker %s after draining owner, want closed", got)
	}
}

// TestClusterDrainUnderConcurrentForwardedTraffic is the two-phase-drain
// regression test: while forwarded traffic is in flight, the owner starts
// draining; every in-flight forward must finish, every new request must be
// answered (fallback on the relay, 503 directly), and no goroutine may
// outlive the drain.
func TestClusterDrainUnderConcurrentForwardedTraffic(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		nodes := startTestCluster(t, 2, ClusterOptions{})
		a, b := nodes[0], nodes[1]
		seed := seedOwnedBy(t, a.node, b.addr)

		// Concurrent forwarded traffic across the drain flip: a fresh seed
		// per request forces real computes (roughly half owned by the
		// draining node), and the traffic window straddles the flip so
		// forwards are in flight when the drain begins.
		const workers = 8
		var (
			wg      sync.WaitGroup
			seedCtr atomic.Int64
		)
		errs := make(chan error, 256)
		stopAt := time.Now().Add(300 * time.Millisecond)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for time.Now().Before(stopAt) {
					body := simulateBody(seed + 1000*seedCtr.Add(1))
					resp, err := http.Post("http://"+a.addr+"/v1/simulate", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
						return
					}
				}
			}(w)
		}
		time.Sleep(50 * time.Millisecond) // let forwards get in flight
		b.draining.Store(true)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("request failed across drain: %v", err)
		}
		// After the flip, the relay must have degraded at least once (the
		// owner 503s every new forward).
		if a.node.Status().FailoverLocal == 0 {
			t.Error("no failover recorded though the owner drained mid-traffic")
		}
		// Tear both nodes down now (the t.Cleanup registration would run
		// only after the leak check below).
		for _, tn := range nodes {
			tn.shutdown()
		}
	}()
	// Cleanup ran: servers closed, services drained. Drop idle keep-alive
	// client connections (default transport, shared by the test requests
	// and the node's forwarder) — they are client-side, not drain leaks.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines %d > baseline %d after drain\n%s", runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterStatusDoc: /v1/status in cluster mode carries the service
// fields plus the peer-aware cluster block.
func TestClusterStatusDoc(t *testing.T) {
	nodes := startTestCluster(t, 3, ClusterOptions{})
	a := nodes[0]
	resp, err := http.Get("http://" + a.addr + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc ClusterStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster.Self != a.addr {
		t.Errorf("cluster.self = %q, want %q", doc.Cluster.Self, a.addr)
	}
	if len(doc.Cluster.Peers) != 2 {
		t.Errorf("cluster.peers = %d entries, want 2", len(doc.Cluster.Peers))
	}
	if len(doc.Cluster.RingMembers) != 3 {
		t.Errorf("ring_members = %v, want 3 members", doc.Cluster.RingMembers)
	}
	if doc.Workers == 0 {
		t.Error("service status fields missing from the cluster doc")
	}
	// Health answers on every node.
	hr, err := http.Get("http://" + a.addr + cluster.HealthPath)
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("health: %v %v", err, hr)
	}
	hr.Body.Close()
}

// TestKeyFor: keys must match the typed requests' own Key() (defaults
// applied), and bad bodies or kinds must error.
func TestKeyFor(t *testing.T) {
	key, err := KeyFor("simulate", []byte(`{"topology":"ring","n":16,"m":8,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	want := SimulateRequest{Topology: "ring", N: 16, M: 8, Seed: 3}.withDefaults().Key()
	if key != want {
		t.Errorf("key %q, want %q", key, want)
	}
	key, err = KeyFor("route", []byte(`{"topology":"ring","m":8,"seed":3}`))
	if err != nil || key != (RouteRequest{Topology: "ring", M: 8, Seed: 3}.withDefaults().Key()) {
		t.Errorf("route key %q err %v", key, err)
	}
	key, err = KeyFor("embed", []byte(`{"topology":"ring","n":16,"m":8,"seed":3}`))
	if err != nil || key != (EmbedRequest{Topology: "ring", N: 16, M: 8, Seed: 3}.withDefaults().Key()) {
		t.Errorf("embed key %q err %v", key, err)
	}
	for _, bad := range []struct{ kind, body string }{
		{"simulate", `{"nope":1}`},
		{"simulate", `not json`},
		{"simulate", `{"topology":"ring","n":-1,"m":8}`},
		{"teleport", `{}`},
	} {
		if _, err := KeyFor(bad.kind, []byte(bad.body)); err == nil {
			t.Errorf("KeyFor(%s, %s) accepted", bad.kind, bad.body)
		}
	}
}
