// Per-stage request telemetry: every /v1 request is decomposed into the
// stages the paper's slowdown story cares about — decode, queue wait, cache
// lookup, compute, the forward hop (split dial/send/wait), encode — with a
// latency histogram per (endpoint, route, stage) and, when tracing is
// enabled, one joinable span tree per request propagated across cluster
// forwards via cluster.TraceHeader. The slow-request watchdog lives here
// too: requests over a threshold emit a structured slow-log line and a
// rate-limited automatic pprof CPU capture.

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// Endpoint indices of the typed /v1 POST endpoints.
const (
	epSimulate = iota
	epRoute
	epEmbed
	epCount
)

var endpointNames = [epCount]string{"simulate", "route", "embed"}

// Route indices, matching the HeaderRoute values.
const (
	routeLocal = iota
	routeForwarded
	routeFallback
	routeCount
)

var routeNames = [routeCount]string{"local", "forwarded", "fallback"}

// Stage indices. The forward_* stages are children of forward in the span
// tree; everything else parents directly under the request root.
const (
	stageDecode = iota
	stageQueue
	stageCache
	stageCompute
	stageForward
	stageForwardDial
	stageForwardSend
	stageForwardWait
	stageEncode
	stageCount
)

var stageNames = [stageCount]string{
	"decode", "queue", "cache", "compute",
	"forward", "forward_dial", "forward_send", "forward_wait", "encode",
}

// stageParent maps a stage to its parent stage in the span tree, or -1 for
// direct children of the request root.
var stageParent = [stageCount]int{
	stageDecode:      -1,
	stageQueue:       -1,
	stageCache:       -1,
	stageCompute:     -1,
	stageForward:     -1,
	stageForwardDial: stageForward,
	stageForwardSend: stageForward,
	stageForwardWait: stageForward,
	stageEncode:      -1,
}

// stageBucketsUS spans sub-100µs cache hits through multi-second computes.
var stageBucketsUS = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 500000, 1000000, 2500000, 5000000, 10000000}

// telemetry holds the per-(endpoint, route, stage) histograms, resolved once
// at construction so the request path only ticks instruments. Nil when the
// service has no registry.
type telemetry struct {
	stages [epCount][routeCount][stageCount]*obs.Histogram
	total  [epCount][routeCount]*obs.Histogram
}

func newTelemetry(reg *obs.Registry) *telemetry {
	if reg == nil {
		return nil
	}
	t := &telemetry{}
	for e := 0; e < epCount; e++ {
		for r := 0; r < routeCount; r++ {
			t.total[e][r] = reg.Histogram(
				fmt.Sprintf("service.request_us{endpoint=%q,route=%q}",
					endpointNames[e], routeNames[r]), stageBucketsUS)
			for st := 0; st < stageCount; st++ {
				t.stages[e][r][st] = reg.Histogram(
					fmt.Sprintf("service.stage_us{endpoint=%q,route=%q,stage=%q}",
						endpointNames[e], routeNames[r], stageNames[st]), stageBucketsUS)
			}
		}
	}
	return t
}

// reqTimings accumulates one request's per-stage timings. Stage writers use
// atomics because a worker may still be finishing a stage when the handler
// flushes after a deadline-exceeded abandon — the flush then simply sees
// whatever stages had completed. The zero duration means "stage not
// reached"; starts are first-write-wins so a stage records its earliest
// entry.
type reqTimings struct {
	startUS [stageCount]atomic.Int64 // unix µs of first entry into the stage
	durUS   [stageCount]atomic.Int64 // accumulated stage duration, µs

	// Trace identity (set once by the middleware before the request runs;
	// read-only afterwards).
	sc      obs.SpanContext // this request's root span
	remote  obs.SpanID      // parent span on the ingress node, if forwarded
	forward obs.SpanID      // pre-drawn span ID for the forward stage
	traced  bool
}

// record folds one completed stage interval ending now. Nil-safe, so the
// service spine works identically with and without the middleware installed.
func (rt *reqTimings) record(stage int, start time.Time) {
	if rt == nil {
		return
	}
	rt.recordUS(stage, start.UnixMicro(), time.Since(start).Microseconds())
}

// recordUS folds one stage interval given explicitly (used when the duration
// was measured elsewhere, e.g. the forward dial/send/wait split reported by
// cluster.ForwardResponse). Nil-safe.
func (rt *reqTimings) recordUS(stage int, startUS, durUS int64) {
	if rt == nil || durUS < 0 {
		return
	}
	rt.startUS[stage].CompareAndSwap(0, startUS)
	rt.durUS[stage].Add(durUS)
}

// timingsKey is the context key carrying *reqTimings through the handler
// chain into Service.do and the cluster router.
type timingsKey struct{}

func withTimings(ctx context.Context, rt *reqTimings) context.Context {
	return context.WithValue(ctx, timingsKey{}, rt)
}

func timingsFrom(ctx context.Context) *reqTimings {
	if ctx == nil {
		return nil
	}
	rt, _ := ctx.Value(timingsKey{}).(*reqTimings)
	return rt
}

// TelemetryOptions tunes the Telemetry middleware.
type TelemetryOptions struct {
	// Node is this node's advertised address, attached to spans and slow-log
	// lines so multi-node traces attribute spans to machines. "" for
	// single-node serving.
	Node string
	// SlowThreshold arms the slow-request watchdog: requests whose total
	// latency meets or exceeds it emit a slow-log line and (rate-limited) a
	// pprof CPU capture. 0 disables the watchdog.
	SlowThreshold time.Duration
	// SlowLog receives one JSON line per slow request (nil: no slow log).
	SlowLog io.Writer
	// ProfileDir receives automatic CPU profiles (profile_<ns>.pprof);
	// "" disables capture.
	ProfileDir string
	// ProfileDuration is one capture's length; 0 ⇒ 500ms.
	ProfileDuration time.Duration
	// ProfileEvery rate-limits captures; 0 ⇒ 30s.
	ProfileEvery time.Duration
}

func (o TelemetryOptions) withDefaults() TelemetryOptions {
	if o.ProfileDuration <= 0 {
		o.ProfileDuration = 500 * time.Millisecond
	}
	if o.ProfileEvery <= 0 {
		o.ProfileEvery = 30 * time.Second
	}
	return o
}

// statusWriter captures the response status for route/status attribution.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// telemetryHandler is the middleware's state.
type telemetryHandler struct {
	s    *Service
	next http.Handler
	opts TelemetryOptions

	slowMu        sync.Mutex
	lastProfileNS atomic.Int64
	profiling     atomic.Bool
}

// Telemetry wraps next with per-stage request telemetry, distributed-trace
// propagation, and the slow-request watchdog. With no registry on s the
// middleware is a no-op passthrough (disabled means free). Install it
// outermost around the /v1 handler (including ClusterHandler) so the
// timings context reaches the router and the service spine.
func Telemetry(s *Service, opts TelemetryOptions, next http.Handler) http.Handler {
	if s == nil || s.obs == nil {
		return next
	}
	return &telemetryHandler{s: s, next: next, opts: opts.withDefaults()}
}

// endpointOf maps a request path to its endpoint index, or -1 for paths the
// middleware passes through untouched.
func endpointOf(path string) int {
	switch path {
	case "/v1/simulate":
		return epSimulate
	case "/v1/route":
		return epRoute
	case "/v1/embed":
		return epEmbed
	}
	return -1
}

// routeOf maps a HeaderRoute value to its index ("" — the plain non-cluster
// handler — is local).
func routeOf(route string) int {
	switch route {
	case "forwarded":
		return routeForwarded
	case "fallback":
		return routeFallback
	}
	return routeLocal
}

func (h *telemetryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ep := endpointOf(r.URL.Path)
	if ep < 0 || r.Method != http.MethodPost {
		h.next.ServeHTTP(w, r)
		return
	}
	reg := h.s.obs
	rt := &reqTimings{}
	ctx := r.Context()
	if reg.TraceEnabled() {
		ids := reg.IDs()
		var trace obs.TraceID
		if sc, ok := obs.ParseSpanContext(r.Header.Get(cluster.TraceHeader)); ok {
			trace = sc.Trace
			rt.remote = sc.Span
		}
		if trace.IsZero() {
			trace = ids.TraceID()
		}
		rt.sc = obs.SpanContext{Trace: trace, Span: ids.SpanID()}
		rt.forward = ids.SpanID()
		rt.traced = true
		ctx = obs.ContextWithSpan(ctx, rt.sc)
		// Echo the trace ID so clients (uninetload) can assert joins.
		w.Header().Set(cluster.TraceHeader, trace.String())
	}
	ctx = withTimings(ctx, rt)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	h.next.ServeHTTP(sw, r.WithContext(ctx))
	total := time.Since(start)

	route := routeOf(sw.Header().Get(HeaderRoute))
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	if t := h.s.tele; t != nil {
		totalUS := total.Microseconds()
		t.total[ep][route].Observe(totalUS)
		for st := 0; st < stageCount; st++ {
			if d := rt.durUS[st].Load(); d > 0 {
				t.stages[ep][route][st].Observe(d)
			}
		}
	}
	if rt.traced {
		h.emitSpans(reg, rt, ep, route, status, start, total)
	}
	if h.opts.SlowThreshold > 0 && total >= h.opts.SlowThreshold {
		h.onSlow(rt, ep, route, status, start, total)
	}
}

// emitSpans writes the request's span tree: a root http.request span plus
// one child per stage that ran, with forward_* parented under forward. The
// spans were timed without live obs.Span objects (the stages run across
// goroutines), so the events are assembled here and emitted directly.
func (h *telemetryHandler) emitSpans(reg *obs.Registry, rt *reqTimings, ep, route, status int, start time.Time, total time.Duration) {
	sink := reg.Sink()
	if sink == nil {
		return
	}
	ids := reg.IDs()
	trace := rt.sc.Trace.String()
	root := obs.SpanEvent{
		Span:    "http.request",
		Trace:   trace,
		SpanID:  rt.sc.Span.String(),
		StartUS: start.UnixMicro(),
		DurUS:   total.Microseconds(),
		Attrs: map[string]any{
			"endpoint": endpointNames[ep],
			"route":    routeNames[route],
			"status":   status,
		},
	}
	if h.opts.Node != "" {
		root.Attrs["node"] = h.opts.Node
	}
	if rt.remote != 0 {
		root.Parent = rt.remote.String()
	}
	sink.Emit(root)

	var stageIDs [stageCount]obs.SpanID
	stageIDs[stageForward] = rt.forward
	for st := 0; st < stageCount; st++ {
		if rt.durUS[st].Load() <= 0 {
			continue
		}
		if stageIDs[st] == 0 {
			stageIDs[st] = ids.SpanID()
		}
	}
	for st := 0; st < stageCount; st++ {
		dur := rt.durUS[st].Load()
		if dur <= 0 {
			continue
		}
		parent := rt.sc.Span
		if p := stageParent[st]; p >= 0 && stageIDs[p] != 0 {
			parent = stageIDs[p]
		}
		ev := obs.SpanEvent{
			Span:    stageNames[st],
			Trace:   trace,
			SpanID:  stageIDs[st].String(),
			Parent:  parent.String(),
			StartUS: rt.startUS[st].Load(),
			DurUS:   dur,
		}
		if h.opts.Node != "" {
			ev.Attrs = map[string]any{"node": h.opts.Node}
		}
		sink.Emit(ev)
	}
}

// slowLogLine is the watchdog's structured record of one slow request.
type slowLogLine struct {
	TS       string           `json:"ts"`
	Node     string           `json:"node,omitempty"`
	Trace    string           `json:"trace,omitempty"`
	Endpoint string           `json:"endpoint"`
	Route    string           `json:"route"`
	Status   int              `json:"status"`
	TotalUS  int64            `json:"total_us"`
	Stages   map[string]int64 `json:"stages_us,omitempty"`
	Profile  string           `json:"profile,omitempty"`
}

// onSlow handles one request over the threshold: count it, log it, and
// (rate-limited) kick off a CPU capture.
func (h *telemetryHandler) onSlow(rt *reqTimings, ep, route, status int, start time.Time, total time.Duration) {
	h.s.obs.Counter("service.slow_requests").Inc()
	line := slowLogLine{
		TS:       start.UTC().Format(time.RFC3339Nano),
		Node:     h.opts.Node,
		Endpoint: endpointNames[ep],
		Route:    routeNames[route],
		Status:   status,
		TotalUS:  total.Microseconds(),
	}
	if rt.traced {
		line.Trace = rt.sc.Trace.String()
	}
	for st := 0; st < stageCount; st++ {
		if d := rt.durUS[st].Load(); d > 0 {
			if line.Stages == nil {
				line.Stages = make(map[string]int64, stageCount)
			}
			line.Stages[stageNames[st]] = d
		}
	}
	if path := h.maybeProfile(); path != "" {
		line.Profile = path
	}
	if h.opts.SlowLog != nil {
		b, err := json.Marshal(line)
		if err == nil {
			h.slowMu.Lock()
			h.opts.SlowLog.Write(append(b, '\n'))
			h.slowMu.Unlock()
		}
	}
}

// maybeProfile starts one asynchronous CPU capture if a profile dir is
// configured, the rate limit allows it, and no capture is already running.
// Returns the profile path that will be written, or "".
func (h *telemetryHandler) maybeProfile() string {
	if h.opts.ProfileDir == "" {
		return ""
	}
	now := time.Now().UnixNano()
	last := h.lastProfileNS.Load()
	if now-last < int64(h.opts.ProfileEvery) {
		return ""
	}
	if !h.lastProfileNS.CompareAndSwap(last, now) {
		return "" // another slow request won the slot
	}
	if !h.profiling.CompareAndSwap(false, true) {
		return ""
	}
	path := filepath.Join(h.opts.ProfileDir, fmt.Sprintf("profile_%d.pprof", now))
	go func() {
		defer h.profiling.Store(false)
		f, err := os.Create(path)
		if err != nil {
			h.s.obs.Counter("service.slow_profile_errors").Inc()
			return
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			// Another profiler (e.g. /debug/pprof/profile) is running.
			h.s.obs.Counter("service.slow_profile_errors").Inc()
			return
		}
		time.Sleep(h.opts.ProfileDuration)
		pprof.StopCPUProfile()
		h.s.obs.Counter("service.slow_profiles").Inc()
	}()
	return path
}

// encodeErrClasses dedups encode-error logging per concrete error type, so
// a storm of identical failures produces one log line.
var encodeErrClasses sync.Map

func logEncodeErrorOnce(err error) {
	class := fmt.Sprintf("%T", err)
	if _, loaded := encodeErrClasses.LoadOrStore(class, true); !loaded {
		log.Printf("service: response encode failed (%s, logged once per class): %v", class, err)
	}
}
