package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"universalnet/internal/obs"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHandlerSimulate(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	h := Handler(s)
	w := postJSON(t, h, "/v1/simulate", `{"topology":"torus","n":64,"m":16,"seed":7,"steps":4}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var res SimulateResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Slowdown <= 0 || res.Cached {
		t.Errorf("implausible first response: %+v", res)
	}
	w = postJSON(t, h, "/v1/simulate", `{"topology":"torus","n":64,"m":16,"seed":7,"steps":4}`)
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("identical request not served from cache")
	}
}

func TestHandlerRouteEmbedStatus(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	h := Handler(s)
	if w := postJSON(t, h, "/v1/route", `{"topology":"ring","m":16,"seed":2}`); w.Code != http.StatusOK {
		t.Errorf("route status = %d, body %s", w.Code, w.Body)
	}
	if w := postJSON(t, h, "/v1/embed", `{"topology":"torus","n":64,"m":16,"seed":2}`); w.Code != http.StatusOK {
		t.Errorf("embed status = %d, body %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status endpoint = %d", w.Code)
	}
	var st Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.Completed < 2 {
		t.Errorf("status implausible: %+v", st)
	}
}

func TestHandlerErrorMapping(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	h := Handler(s)
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/simulate", `{"topology":"klein-bottle","n":64,"m":16}`, http.StatusBadRequest},
		{"/v1/simulate", `not json`, http.StatusBadRequest},
		{"/v1/simulate", `{"topology":"torus","n":64,"m":16,"bogus_field":1}`, http.StatusBadRequest},
		{"/v1/route", `{"topology":"torus","m":36,"pattern":"bitreversal"}`, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if w := postJSON(t, h, c.path, c.body); w.Code != c.want {
			t.Errorf("POST %s %q: status %d, want %d (body %s)", c.path, c.body, w.Code, c.want, w.Body)
		}
	}
	// Method guards.
	req := httptest.NewRequest(http.MethodGet, "/v1/simulate", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET simulate = %d, want 405", w.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/status", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", w.Code)
	}
}

func TestHandlerOverloadMapsTo429(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	h := Handler(s)
	block := make(chan struct{})
	defer close(block)
	running := make(chan struct{})
	if err := s.submit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	if err := s.submit(func() {}); err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, h, "/v1/simulate", `{"topology":"torus","n":16,"m":4,"seed":1}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d, want 429 (body %s)", w.Code, w.Body)
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("429 body not a JSON error envelope: %s", w.Body)
	}
}

func TestDrainWrapper(t *testing.T) {
	s := New(Config{Workers: 1, Obs: obs.New()})
	h := Drain(s.Draining, Handler(s))
	w := postJSON(t, h, "/v1/route", `{"topology":"ring","m":16,"seed":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("pre-drain status = %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, h, "/v1/route", `{"topology":"ring","m":16,"seed":2}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status during drain = %d, want 503", rec.Code)
	}
}
