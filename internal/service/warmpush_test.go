package service

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/obs"
)

// TestWarmPushRepairsOwnerCache: A falls back to local compute while owner
// B is draining; once B recovers, A's warm pusher re-forwards the request
// so B's very next client hit for the key is a cache hit.
func TestWarmPushRepairsOwnerCache(t *testing.T) {
	var pushers []*WarmPusher
	nodes := startTestClusterWith(t, 2, func(tn *clusterTestNode) ClusterOptions {
		p := NewWarmPusher(tn.node, WarmPushOptions{
			QueueDepth: 4,
			RetryEvery: 5 * time.Millisecond,
			Obs:        tn.reg,
		})
		pushers = append(pushers, p)
		return ClusterOptions{WarmPusher: p}
	})
	t.Cleanup(func() {
		for _, p := range pushers {
			p.Close()
		}
	})
	a, b := nodes[0], nodes[1]
	seed := seedOwnedBy(t, a.node, b.addr)
	body := simulateBody(seed)

	// Owner drains: A's forward gets the 503 and serves the degraded local
	// answer, leaving B's cache cold — the asymmetry the pusher repairs.
	b.draining.Store(true)
	status, respA, hdr := postNode(t, a.addr, body)
	if status != http.StatusOK {
		t.Fatalf("fallback status %d, want 200 (%s)", status, respA)
	}
	if hdr.Get(HeaderRoute) != "fallback" {
		t.Fatalf("route %q, want fallback", hdr.Get(HeaderRoute))
	}

	// Owner recovers; the queued push should land shortly after.
	b.draining.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for a.reg.Counter("cluster.warm_pushes").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("warm push never delivered: pushes=%d dropped=%d failed=%d",
				a.reg.Counter("cluster.warm_pushes").Value(),
				a.reg.Counter("cluster.warm_push_dropped").Value(),
				a.reg.Counter("cluster.warm_push_failed").Value())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// B's next request for the key — straight to the owner — is a hit.
	status, respB, hdr := postNode(t, b.addr, body)
	if status != http.StatusOK {
		t.Fatalf("owner status %d, want 200 (%s)", status, respB)
	}
	if hdr.Get(HeaderRoute) != "local" {
		t.Errorf("route %q, want local", hdr.Get(HeaderRoute))
	}
	var res struct {
		Cached   bool   `json:"cached"`
		Checksum uint64 `json:"checksum"`
	}
	if err := json.Unmarshal(respB, &res); err != nil {
		t.Fatalf("bad owner response %s: %v", respB, err)
	}
	if !res.Cached {
		t.Errorf("owner served a cold compute after warm push: %s", respB)
	}
	if got, want := res.Checksum, checksumOf(t, respA); got != want {
		t.Errorf("owner checksum %d != fallback checksum %d", got, want)
	}
}

// TestWarmPushQueueBounded: a full queue drops pushes instead of blocking
// the serving path, and the drop is counted.
func TestWarmPushQueueBounded(t *testing.T) {
	nodes := startTestCluster(t, 2, ClusterOptions{})
	a := nodes[0]
	// Standalone pusher over a's node targeting a peer whose breaker never
	// closes matters not — nothing drains the queue fast enough because the
	// worker is parked on the first push's retry loop.
	p := NewWarmPusher(a.node, WarmPushOptions{
		QueueDepth: 1,
		RetryEvery: time.Hour, // park the worker
		Obs:        a.reg,
	})
	defer p.Close()
	nodes[1].draining.Store(true)
	for i := 0; i < 4; i++ {
		p.Enqueue(nodes[1].addr, "/v1/simulate", simulateBody(int64(i+1)))
	}
	// One push may be in the worker's hands and one in the queue; at least
	// two of the four must have been dropped.
	if got := a.reg.Counter("cluster.warm_push_dropped").Value(); got < 2 {
		t.Errorf("dropped %d pushes, want >= 2", got)
	}
}

// TestWarmPushReclosesBreaker: an owner that is down at the transport level
// opens its breaker; when it comes back there is no foreground traffic to
// probe the half-open breaker, so the push attempt itself must be the
// probe. A pusher that waited for BreakerState to read closed would spin
// its full attempt budget here and fail.
func TestWarmPushReclosesBreaker(t *testing.T) {
	reg := obs.New()
	// A listener we can kill and resurrect on the same address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	owner := ln.Addr().String()
	ln.Close()

	node, err := cluster.NewNode(cluster.Config{
		Self:           "127.0.0.1:1", // never listens; only Forward is used
		Peers:          []string{owner},
		Retries:        1,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		ForwardTimeout: time.Second,
		Obs:            reg,
		Breaker:        cluster.BreakerConfig{FailureThreshold: 1, OpenTimeout: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	p := NewWarmPusher(node, WarmPushOptions{RetryEvery: 5 * time.Millisecond, Obs: reg})
	defer p.Close()
	p.Enqueue(owner, "/v1/simulate", simulateBody(1))

	// Let the first attempts fail against the dead address and trip the
	// breaker open.
	deadline := time.Now().Add(5 * time.Second)
	for node.BreakerState(owner) != cluster.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened against the dead owner")
		}
		time.Sleep(time.Millisecond)
	}

	// Owner resurrects on the same address.
	ln2, err := net.Listen("tcp", owner)
	if err != nil {
		t.Fatalf("rebind %s: %v", owner, err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go srv.Serve(ln2)
	defer srv.Close()

	for reg.Counter("cluster.warm_pushes").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("push never landed after owner recovery: failed=%d state=%v",
				reg.Counter("cluster.warm_push_failed").Value(), node.BreakerState(owner))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := node.BreakerState(owner); got != cluster.BreakerClosed {
		t.Errorf("breaker %v after successful push, want closed", got)
	}
}

// TestWarmPushNilSafe: a nil pusher is inert at every call site, so the
// routing path needs no guards.
func TestWarmPushNilSafe(t *testing.T) {
	var p *WarmPusher
	p.Enqueue("owner", "/v1/simulate", nil)
	p.Close()
}
