package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets (run with seed corpus in normal `go test`; extend
// with `go test -fuzz=FuzzReadJSON ./internal/graph`).

func FuzzReadJSON(f *testing.F) {
	f.Add(`{"n":3,"edges":[[0,1],[1,2]]}`)
	f.Add(`{"n":0}`)
	f.Add(`{"n":2,"edges":[[0,0]]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return // malformed input must only error, never panic
		}
		// Round-trip stability for accepted graphs.
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !g.Equal(back) {
			t.Fatal("round trip changed the graph")
		}
	})
}
