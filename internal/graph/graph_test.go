package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

// ringGraph returns the n-cycle, a handy regular fixture.
func ringGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge(5,2) = %v, want {2,5}", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Errorf("Other endpoints wrong for %v", e)
	}
}

func TestNewEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEdge(3,3) did not panic")
		}
	}()
	NewEdge(3, 3)
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	NewEdge(1, 2).Other(7)
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 0)
	b.MustAddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 after duplicate inserts", g.M())
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Error("builder HasEdge missing inserted edge")
	}
	if b.HasEdge(2, 3) {
		t.Error("builder HasEdge reports absent edge")
	}
}

func TestBuildIsIndependentOfBuilder(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	g1 := b.Build()
	b.MustAddEdge(1, 2)
	g2 := b.Build()
	if g1.M() != 1 || g2.M() != 2 {
		t.Errorf("builder reuse broke immutability: m1=%d m2=%d", g1.M(), g2.M())
	}
}

func TestBasicAccessors(t *testing.T) {
	g := mustGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	if g.N() != 5 {
		t.Errorf("N = %d", g.N())
	}
	if g.M() != 6 {
		t.Errorf("M = %d", g.M())
	}
	if g.Degree(0) != 3 || g.Degree(3) != 2 {
		t.Errorf("degrees wrong: %v", g.DegreeHistogram())
	}
	if g.MaxDegree() != 3 || g.MinDegree() != 2 {
		t.Errorf("max/min degree wrong: %d/%d", g.MaxDegree(), g.MinDegree())
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("HasEdge misses chord")
	}
	if g.HasEdge(1, 3) {
		t.Error("HasEdge reports absent edge")
	}
	if g.HasEdge(0, 0) || g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Error("HasEdge accepts invalid queries")
	}
}

func TestEdgesCanonicalAndComplete(t *testing.T) {
	g := ringGraph(t, 6)
	es := g.Edges()
	if len(es) != 6 {
		t.Fatalf("len(Edges) = %d", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %v not canonical", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v not in graph", e)
		}
	}
}

func TestIsRegular(t *testing.T) {
	g := ringGraph(t, 8)
	if !g.IsRegular(2) {
		t.Error("ring not 2-regular")
	}
	if g.IsRegular(3) {
		t.Error("ring claimed 3-regular")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	h := g.DegreeHistogram()
	if h[3] != 1 || h[1] != 3 {
		t.Errorf("star histogram wrong: %v", h)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := ringGraph(t, 7)
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("clone not equal")
	}
	if g.Hash() != c.Hash() {
		t.Error("clone hash differs")
	}
	h := ringGraph(t, 8)
	if g.Equal(h) {
		t.Error("different rings equal")
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0-1-2-3 plus isolated vertex 4.
	g := mustGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := ringGraph(t, 10)
	p := g.ShortestPath(0, 5)
	if len(p) != 6 {
		t.Fatalf("path length %d, want 6 hops+1: %v", len(p), p)
	}
	if p[0] != 0 || p[len(p)-1] != 5 {
		t.Errorf("endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("non-edge on path: %d-%d", p[i], p[i+1])
		}
	}
	if got := g.ShortestPath(3, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("trivial path wrong: %v", got)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {2, 3}})
	if p := g.ShortestPath(0, 3); p != nil {
		t.Errorf("path across components: %v", p)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := mustGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("first component split")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("component labels wrong")
	}
	if g.IsConnected() {
		t.Error("disconnected graph claimed connected")
	}
	if !ringGraph(t, 5).IsConnected() {
		t.Error("ring claimed disconnected")
	}
}

func TestDiameter(t *testing.T) {
	if d := ringGraph(t, 10).Diameter(); d != 5 {
		t.Errorf("ring diameter = %d, want 5", d)
	}
	// Path of 4 vertices: diameter 3.
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if d := g.Diameter(); d != 3 {
		t.Errorf("path diameter = %d, want 3", d)
	}
	// Disconnected.
	h := mustGraph(t, 3, [][2]int{{0, 1}})
	if d := h.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
}

func TestGirth(t *testing.T) {
	if gi := ringGraph(t, 9).Girth(); gi != 9 {
		t.Errorf("ring girth = %d, want 9", gi)
	}
	tree := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if gi := tree.Girth(); gi != -1 {
		t.Errorf("tree girth = %d, want -1", gi)
	}
	// K4 has girth 3.
	k4 := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if gi := k4.Girth(); gi != 3 {
		t.Errorf("K4 girth = %d, want 3", gi)
	}
}

func TestTNeighborhoodSize(t *testing.T) {
	g := ringGraph(t, 12)
	if s := g.TNeighborhoodSize(0, 0); s != 1 {
		t.Errorf("0-neighborhood = %d", s)
	}
	if s := g.TNeighborhoodSize(0, 2); s != 5 {
		t.Errorf("2-neighborhood = %d, want 5", s)
	}
	if s := g.TNeighborhoodSize(0, 100); s != 12 {
		t.Errorf("large-neighborhood = %d, want 12", s)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := ringGraph(t, 6)
	sub, mapping, err := g.InducedSubgraph([]int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || sub.M() != 2 {
		t.Errorf("induced: n=%d m=%d, want 4, 2", sub.N(), sub.M())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Error("induced edges missing")
	}
	if mapping[3] != 4 {
		t.Errorf("mapping wrong: %v", mapping)
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestUnionAndResidual(t *testing.T) {
	a := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}})
	b := mustGraph(t, 4, [][2]int{{1, 2}, {2, 3}})
	u := Union(a, b)
	if u.M() != 3 {
		t.Errorf("union M = %d, want 3", u.M())
	}
	r := Residual(u, b)
	if r.M() != 1 || !r.HasEdge(0, 1) {
		t.Errorf("residual wrong: %v edges=%v", r, r.Edges())
	}
	if !a.IsSubgraphOf(u) || !b.IsSubgraphOf(u) {
		t.Error("operands not subgraphs of union")
	}
	if u.IsSubgraphOf(a) {
		t.Error("union subgraph of operand")
	}
}

func TestEulerianOrientationRing(t *testing.T) {
	g := ringGraph(t, 7)
	arcs, err := g.EulerianOrientation()
	if err != nil {
		t.Fatal(err)
	}
	checkOrientation(t, g, arcs)
}

func TestEulerianOrientationOddDegreeFails(t *testing.T) {
	g := mustGraph(t, 2, [][2]int{{0, 1}})
	if _, err := g.EulerianOrientation(); err != ErrNotEulerian {
		t.Errorf("err = %v, want ErrNotEulerian", err)
	}
}

func TestEulerianOrientationDisconnected(t *testing.T) {
	// Two disjoint triangles.
	g := mustGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	arcs, err := g.EulerianOrientation()
	if err != nil {
		t.Fatal(err)
	}
	checkOrientation(t, g, arcs)
}

func checkOrientation(t *testing.T, g *Graph, arcs []Arc) {
	t.Helper()
	if len(arcs) != g.M() {
		t.Fatalf("arcs = %d, edges = %d", len(arcs), g.M())
	}
	in := make([]int, g.N())
	out := make([]int, g.N())
	seen := make(map[Edge]bool)
	for _, a := range arcs {
		if !g.HasEdge(a.From, a.To) {
			t.Fatalf("arc %v not an edge", a)
		}
		e := NewEdge(a.From, a.To)
		if seen[e] {
			t.Fatalf("edge %v oriented twice", e)
		}
		seen[e] = true
		out[a.From]++
		in[a.To]++
	}
	for v := 0; v < g.N(); v++ {
		if in[v] != out[v] || in[v] != g.Degree(v)/2 {
			t.Errorf("vertex %d: in=%d out=%d deg=%d", v, in[v], out[v], g.Degree(v))
		}
	}
}

func TestOutEdgesByVertex(t *testing.T) {
	arcs := []Arc{{0, 1}, {0, 2}, {1, 2}}
	out := OutEdgesByVertex(3, arcs)
	if len(out[0]) != 2 || out[0][0] != 1 || out[0][1] != 2 {
		t.Errorf("out[0] = %v", out[0])
	}
	if len(out[2]) != 0 {
		t.Errorf("out[2] = %v", out[2])
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("M = %d", g.M())
	}
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("invalid edge accepted")
	}
}

// randomGraph builds an Erdős–Rényi-ish random graph for property tests.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestPropertyValidateRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		g := randomGraph(r, n, r.Float64())
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Handshake: sum of degrees = 2m.
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		g := randomGraph(r, n, 0.3)
		u, v := r.Intn(n), r.Intn(n)
		du := g.BFS(u)
		dv := g.BFS(v)
		// For every w reachable from both: |du[w]-dv[w]| ≤ dist(u,v).
		if du[v] < 0 {
			return true
		}
		for w := 0; w < n; w++ {
			if du[w] < 0 || dv[w] < 0 {
				continue
			}
			diff := du[w] - dv[w]
			if diff < 0 {
				diff = -diff
			}
			if diff > du[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEulerianOrientationOnEvenGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build an even-degree graph as a union of edge-disjoint cycles.
		n := 4 + r.Intn(20)
		b := NewBuilder(n)
		for c := 0; c < 3; c++ {
			perm := r.Perm(n)
			l := 3 + r.Intn(n-3)
			cyc := perm[:l]
			for i := 0; i < l; i++ {
				u, v := cyc[i], cyc[(i+1)%l]
				if b.HasEdge(u, v) {
					return true // cycle overlap would break even degrees; skip trial
				}
			}
			for i := 0; i < l; i++ {
				b.MustAddEdge(cyc[i], cyc[(i+1)%l])
			}
		}
		g := b.Build()
		arcs, err := g.EulerianOrientation()
		if err != nil {
			return false
		}
		in := make([]int, n)
		out := make([]int, n)
		for _, a := range arcs {
			out[a.From]++
			in[a.To]++
		}
		for v := 0; v < n; v++ {
			if in[v] != out[v] {
				return false
			}
		}
		return len(arcs) == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := ringGraph(t, 8)
	bld := NewBuilder(8)
	for i := 0; i < 8; i++ {
		bld.MustAddEdge(i, (i+2)%8)
	}
	b := bld.Build()
	if a.Hash() == b.Hash() {
		t.Error("distinct graphs hash equal (unlikely collision)")
	}
}

func TestStringer(t *testing.T) {
	s := ringGraph(t, 4).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.MinDegree() != 0 {
		t.Error("empty graph accessors wrong")
	}
	if !g.IsConnected() {
		t.Error("empty graph should be connected by convention")
	}
	if g.Diameter() != -1 {
		t.Error("empty diameter should be -1")
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := ringGraph(t, 9)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Error("round trip changed the graph")
	}
}

func TestGraphJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"n":-2}`)); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"n":2,"edges":[[0,9]]}`)); err == nil {
		t.Error("bad edge accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"n":2,"edges":[[1,1]]}`)); err == nil {
		t.Error("self loop accepted")
	}
}

func TestEccentricitiesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 40, 0.15)
	ecc, conn := g.Eccentricities(4)
	_, serialConn := g.ConnectedComponents()
	_ = serialConn
	for v := 0; v < g.N(); v++ {
		want, _ := g.Eccentricity(v)
		if ecc[v] != want {
			t.Errorf("ecc[%d] = %d, want %d", v, ecc[v], want)
		}
	}
	if conn != g.IsConnected() {
		t.Errorf("connected flag %v, want %v", conn, g.IsConnected())
	}
}

func TestDiameterParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{10, 25} {
		g := ringGraph(t, n)
		if got, want := g.DiameterParallel(3), g.Diameter(); got != want {
			t.Errorf("n=%d: parallel %d vs serial %d", n, got, want)
		}
	}
	// Disconnected and empty.
	disc := mustGraph(t, 4, [][2]int{{0, 1}})
	if d := disc.DiameterParallel(2); d != -1 {
		t.Errorf("disconnected parallel diameter %d", d)
	}
	empty := NewBuilder(0).Build()
	if d := empty.DiameterParallel(2); d != -1 {
		t.Errorf("empty parallel diameter %d", d)
	}
	if ecc, conn := empty.Eccentricities(2); len(ecc) != 0 || !conn {
		t.Error("empty eccentricities wrong")
	}
}

func TestRadius(t *testing.T) {
	// Path of 5: center is vertex 2 with eccentricity 2.
	g := mustGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if r := g.Radius(2); r != 2 {
		t.Errorf("radius = %d, want 2", r)
	}
	if r := g.Radius(0); r != 2 { // workers=0 ⇒ GOMAXPROCS
		t.Errorf("radius with default workers = %d", r)
	}
	disc := mustGraph(t, 3, [][2]int{{0, 1}})
	if r := disc.Radius(1); r != -1 {
		t.Errorf("disconnected radius %d", r)
	}
	empty := NewBuilder(0).Build()
	if r := empty.Radius(1); r != -1 {
		t.Errorf("empty radius %d", r)
	}
}

func TestBuilderAccessors(t *testing.T) {
	b := NewBuilder(5)
	if b.N() != 5 {
		t.Errorf("N = %d", b.N())
	}
	b.MustAddEdge(0, 1)
	if b.Degree(0) != 1 || b.Degree(2) != 0 {
		t.Error("builder degrees wrong")
	}
	g := b.Build()
	if len(g.Neighbors(0)) != 1 || g.Neighbors(0)[0] != 1 {
		t.Errorf("Neighbors(0) = %v", g.Neighbors(0))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge on bad edge did not panic")
		}
	}()
	b.MustAddEdge(0, 9)
}

func TestNewBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}
