package graph

import (
	"fmt"
	"math"
)

// BFS runs breadth-first search from src and returns the distance (in hops)
// from src to every vertex; unreachable vertices get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ShortestPath returns one shortest path from src to dst (inclusive of both
// endpoints), or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.adj[v] {
			if parent[w] < 0 {
				parent[w] = v
				if w == dst {
					// Reconstruct.
					path := []int{dst}
					for x := dst; x != src; x = parent[x] {
						path = append(path, parent[x])
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// ConnectedComponents returns, for each vertex, the index of its component
// (components numbered 0.. in order of smallest contained vertex), and the
// number of components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = count
		queue := []int{v}
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, w := range g.adj[x] {
				if comp[w] < 0 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether g has at most one connected component.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c <= 1
}

// Eccentricity returns the largest BFS distance from v to any reachable
// vertex, and whether all vertices are reachable from v.
func (g *Graph) Eccentricity(v int) (ecc int, connected bool) {
	dist := g.BFS(v)
	connected = true
	for _, d := range dist {
		if d < 0 {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected
}

// Diameter returns the exact diameter (max over vertices of eccentricity) by
// running BFS from every vertex: O(n·m). It returns -1 for a disconnected or
// empty graph. Intended for the moderate sizes used in tests and experiments.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, conn := g.Eccentricity(v)
		if !conn {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// Girth returns the length of a shortest cycle, or -1 if g is acyclic
// (a forest). It runs a BFS from each vertex: O(n·m).
func (g *Graph) Girth() int {
	best := math.MaxInt
	n := g.N()
	dist := make([]int, n)
	parent := make([]int, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.adj[v] {
				if w == parent[v] {
					continue
				}
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else if c := dist[v] + dist[w] + 1; c < best {
					// A non-tree edge closes a cycle through src of length
					// ≥ the true girth; minimizing over all sources is exact.
					best = c
				}
			}
		}
	}
	if best == math.MaxInt {
		return -1
	}
	return best
}

// TNeighborhoodSize returns |{w : dist(v,w) ≤ t}|, the size of the
// t-neighborhood of v — the quantity behind the paper's "polynomial spreading
// function" remark and the log m minimum-diameter argument.
func (g *Graph) TNeighborhoodSize(v, t int) int {
	dist := g.BFS(v)
	count := 0
	for _, d := range dist {
		if d >= 0 && d <= t {
			count++
		}
	}
	return count
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled 0..len(vertices)-1 in the given order, together with the mapping
// newIndex → oldIndex. Duplicate vertices are an error.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx[v] = i
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && i < j {
				b.MustAddEdge(i, j)
			}
		}
	}
	mapping := append([]int(nil), vertices...)
	return b.Build(), mapping, nil
}

// Union returns the graph on max(g.N(), h.N()) vertices whose edge set is the
// union of the two edge sets. Used to overlay the multitorus and expander
// edge sets of Definition 3.9.
func Union(g, h *Graph) *Graph {
	n := g.N()
	if h.N() > n {
		n = h.N()
	}
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.MustAddEdge(e.U, e.V)
	}
	for _, e := range h.Edges() {
		b.MustAddEdge(e.U, e.V)
	}
	return b.Build()
}

// Residual returns g with all edges of h removed (vertex set unchanged):
// the graph G' = G \ G₀ from the proof of Proposition 3.6(b).
func Residual(g, h *Graph) *Graph {
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		if !h.HasEdge(e.U, e.V) {
			b.MustAddEdge(e.U, e.V)
		}
	}
	return b.Build()
}

// IsSubgraphOf reports whether every edge of g is an edge of h and
// g.N() ≤ h.N().
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.N() > h.N() {
		return false
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// FNV-1a over the adjacency structure; identical labeled graphs hash equal.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a structural hash of the labeled graph, suitable for
// deduplicating graphs in counting experiments.
func (g *Graph) Hash() uint64 {
	h := uint64(fnvOffset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime
			x >>= 8
		}
	}
	mix(uint64(g.N()))
	for v, a := range g.adj {
		mix(uint64(v))
		for _, w := range a {
			mix(uint64(w) + 1)
		}
	}
	return h
}
