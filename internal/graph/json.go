package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the wire format: vertex count + canonical edge list.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// WriteJSON serializes the graph as {"n": ..., "edges": [[u,v], ...]}.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{N: g.N()}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, [2]int{e.U, e.V})
	}
	return json.NewEncoder(w).Encode(&jg)
}

// ReadJSON deserializes a graph written by WriteJSON, validating edges.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	if jg.N < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", jg.N)
	}
	b := NewBuilder(jg.N)
	for _, e := range jg.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
