// Package graph provides the immutable undirected simple-graph type used
// throughout the universal-network laboratory, together with the structural
// algorithms the paper's constructions rely on: breadth-first search,
// connectivity, diameter, girth, Eulerian orientation (Lemma 3.3), and
// graph set operations (union, residual, induced subgraph).
//
// Vertices are the integers 0..N-1. Graphs are simple (no self-loops, no
// parallel edges) and undirected unless stated otherwise. All graphs are
// immutable once built; construction goes through a Builder.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the canonical form of the edge {u, v} (smaller endpoint
// first). It panics if u == v, because the graphs in this package are simple.
func NewEdge(u, v int) Edge {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e different from w. It panics if w is not an
// endpoint of e.
func (e Edge) Other(w int) int {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not an endpoint of edge %v", w, e))
}

// Graph is an immutable, undirected, simple graph on vertices 0..N-1.
// Adjacency lists are sorted ascending, enabling O(log d) edge queries.
type Graph struct {
	adj   [][]int
	edges int
}

// Builder accumulates edges for a Graph. The zero value is not usable; call
// NewBuilder.
type Builder struct {
	n    int
	adj  [][]int
	seen map[Edge]struct{}
}

// NewBuilder returns a Builder for a graph with n vertices (n ≥ 0).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{
		n:    n,
		adj:  make([][]int, n),
		seen: make(map[Edge]struct{}),
	}
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge inserts the undirected edge {u, v}. Inserting an edge twice is a
// no-op, so constructions that overlay edge sets (for example the G₀ graph of
// Definition 3.9, a multitorus union an expander) can add freely. It returns
// an error for out-of-range endpoints or self-loops.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	e := NewEdge(u, v)
	if _, dup := b.seen[e]; dup {
		return nil
	}
	b.seen[e] = struct{}{}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	return nil
}

// MustAddEdge is AddEdge that panics on error; for use in topology
// constructors whose index arithmetic guarantees validity.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} has already been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	_, ok := b.seen[NewEdge(u, v)]
	return ok
}

// Degree returns the current degree of v in the builder.
func (b *Builder) Degree(v int) int { return len(b.adj[v]) }

// Build finalizes the graph. The builder may be reused afterwards; the graph
// does not alias builder memory.
func (b *Builder) Build() *Graph {
	adj := make([][]int, b.n)
	edges := 0
	for v := range b.adj {
		adj[v] = append([]int(nil), b.adj[v]...)
		sort.Ints(adj[v])
		edges += len(adj[v])
	}
	return &Graph{adj: adj, edges: edges / 2}
}

// FromEdges builds a graph on n vertices from an edge list. Duplicate edges
// are merged. It returns an error on invalid endpoints or self-loops.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) || u == v {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Edges returns all edges in canonical (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	return out
}

// MaxDegree returns the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// MinDegree returns the smallest vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// IsRegular reports whether every vertex has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, a := range g.adj {
		if len(a) != d {
			return false
		}
	}
	return true
}

// DegreeHistogram returns a map degree → number of vertices with that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, a := range g.adj {
		h[len(a)]++
	}
	return h
}

// Validate checks internal invariants: sorted adjacency, symmetry, no loops,
// no duplicates, consistent edge count. Graphs produced by Builder always
// pass; Validate guards hand-constructed test fixtures and deserialized data.
func (g *Graph) Validate() error {
	total := 0
	for u, a := range g.adj {
		for i, v := range a {
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, v)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if i > 0 && a[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", u, v)
			}
		}
		total += len(a)
	}
	if total != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency sum %d", g.edges, total)
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, len(g.adj))
	for v := range g.adj {
		adj[v] = append([]int(nil), g.adj[v]...)
	}
	return &Graph{adj: adj, edges: g.edges}
}

// Equal reports whether g and h are identical as labeled graphs.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := range g.adj {
		a, b := g.adj[v], h.adj[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// String returns a short human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}

// ErrNotEulerian is returned by EulerianOrientation when some vertex has odd
// degree.
var ErrNotEulerian = errors.New("graph: vertex of odd degree; no Eulerian orientation exists")

// Arc is a directed edge.
type Arc struct {
	From, To int
}

// EulerianOrientation orients every edge of g such that each vertex has
// in-degree equal to out-degree (= degree/2). This is the orientation used in
// the proof of Lemma 3.3 to describe a c-regular graph by the c/2 edges
// leaving each vertex. All vertex degrees must be even; connectivity is not
// required (each component is handled independently).
func (g *Graph) EulerianOrientation() ([]Arc, error) {
	n := g.N()
	for v := 0; v < n; v++ {
		if g.Degree(v)%2 != 0 {
			return nil, ErrNotEulerian
		}
	}
	// Hierholzer's algorithm per component, using an iterator cursor per
	// vertex and a "used" set over canonical edges with multiplicity-free
	// simple graphs.
	used := make(map[Edge]bool, g.M())
	cursor := make([]int, n)
	arcs := make([]Arc, 0, g.M())

	var trace func(start int)
	trace = func(start int) {
		// Iterative Hierholzer: walk until stuck (back at a vertex with no
		// unused incident edge), splicing sub-tours.
		stack := []int{start}
		var tour []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			advanced := false
			for cursor[v] < len(g.adj[v]) {
				w := g.adj[v][cursor[v]]
				cursor[v]++
				e := NewEdge(v, w)
				if used[e] {
					continue
				}
				used[e] = true
				stack = append(stack, w)
				advanced = true
				break
			}
			if !advanced {
				tour = append(tour, v)
				stack = stack[:len(stack)-1]
			}
		}
		// tour is the Euler tour reversed; orient along the walk order.
		for i := len(tour) - 1; i > 0; i-- {
			arcs = append(arcs, Arc{From: tour[i], To: tour[i-1]})
		}
	}

	for v := 0; v < n; v++ {
		if cursor[v] < len(g.adj[v]) {
			trace(v)
		}
	}
	if len(arcs) != g.M() {
		panic(fmt.Sprintf("graph: Eulerian orientation produced %d arcs for %d edges", len(arcs), g.M()))
	}
	return arcs, nil
}

// OutEdgesByVertex groups an orientation's arcs by source vertex, the form
// used by the Lemma 3.3 counting argument ("list the c/2 edges leaving P_i").
func OutEdgesByVertex(n int, arcs []Arc) [][]int {
	out := make([][]int, n)
	for _, a := range arcs {
		out[a.From] = append(out[a.From], a.To)
	}
	for v := range out {
		sort.Ints(out[v])
	}
	return out
}
