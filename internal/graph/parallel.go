package graph

import (
	"runtime"
	"sync"
)

// Parallel helpers for the O(n·m) whole-graph scans (diameter, eccentricity
// profiles). Sources are sharded over worker goroutines; results are
// deterministic because each worker writes only its own slice entries.

// Eccentricities returns the eccentricity of every vertex, computed with up
// to `workers` goroutines (0 ⇒ GOMAXPROCS). The second return reports
// whether the graph is connected; when it is not, entries reachable only
// partially are still the max over reachable vertices.
func (g *Graph) Eccentricities(workers int) ([]int, bool) {
	n := g.N()
	ecc := make([]int, n)
	connected := make([]bool, n)
	if n == 0 {
		return ecc, true
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for v := 0; v < n; v++ {
		next <- v
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for v := range next {
				e, conn := g.Eccentricity(v)
				ecc[v] = e
				connected[v] = conn
			}
		}()
	}
	wg.Wait()
	allConn := true
	for _, c := range connected {
		if !c {
			allConn = false
			break
		}
	}
	return ecc, allConn
}

// DiameterParallel computes the exact diameter with parallel BFS sweeps.
// Semantics match Diameter: −1 for disconnected or empty graphs.
func (g *Graph) DiameterParallel(workers int) int {
	if g.N() == 0 {
		return -1
	}
	ecc, conn := g.Eccentricities(workers)
	if !conn {
		return -1
	}
	max := 0
	for _, e := range ecc {
		if e > max {
			max = e
		}
	}
	return max
}

// Radius returns the minimum eccentricity (the center's eccentricity), or
// −1 for disconnected/empty graphs. Parallel like DiameterParallel.
func (g *Graph) Radius(workers int) int {
	if g.N() == 0 {
		return -1
	}
	ecc, conn := g.Eccentricities(workers)
	if !conn {
		return -1
	}
	min := ecc[0]
	for _, e := range ecc[1:] {
		if e < min {
			min = e
		}
	}
	return min
}
