package topology

import (
	"fmt"
	"math/rand"

	"universalnet/internal/graph"
)

// Multibutterfly (related work [17], Rappoport): a butterfly-like network
// whose level-to-level wiring uses expander-based splitters instead of the
// butterfly's single cross edge. Each node of level l has `mult` up-edges
// into the upper half and `mult` into the lower half of its 2^{d−l}-row
// block at level l+1, drawn from random permutations (random splitters are
// good expanders w.h.p.). Degree ≤ 4·mult; the multibutterfly routes
// worst-case permutations deterministically where the butterfly congests —
// and, per [17], cannot be efficiently simulated BY a small butterfly.

// MultibutterflyNode maps (level ∈ [0,d], row ∈ [0,2^d)) to a vertex index.
func MultibutterflyNode(d, level, row int) int { return level*(1<<d) + row }

// Multibutterfly builds the network with the given splitter multiplicity
// (mult ≥ 1; mult = 1 with deterministic wiring degenerates to a butterfly-
// like graph). Randomness is seeded; the graph is simple and connected.
func Multibutterfly(d, mult int, seed int64) (*graph.Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("topology: multibutterfly dimension %d out of range [1,20]", d)
	}
	if mult < 1 || mult > 8 {
		return nil, fmt.Errorf("topology: splitter multiplicity %d out of range [1,8]", mult)
	}
	rows := 1 << d
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder((d + 1) * rows)
	// At level l the rows are partitioned into blocks of size 2^{d−l}
	// (blocks share the top l address bits). Within a block, each node gets
	// `mult` edges into the block's upper half at level l+1 and `mult` into
	// its lower half, via random matchings between the block and each half.
	for l := 0; l < d; l++ {
		blockSize := 1 << (d - l)
		half := blockSize / 2
		for blockStart := 0; blockStart < rows; blockStart += blockSize {
			for _, halfStart := range []int{blockStart, blockStart + half} {
				for m := 0; m < mult; m++ {
					// A random matching: block position i → half position
					// perm[i mod half] (each half node receives exactly
					// 2·mult edges: the block is twice the half's size).
					perm := rng.Perm(half)
					for i := 0; i < blockSize; i++ {
						src := MultibutterflyNode(d, l, blockStart+i)
						dst := MultibutterflyNode(d, l+1, halfStart+perm[i%half])
						// Random matchings can collide with earlier ones;
						// the builder dedupes, which only lowers the degree.
						b.MustAddEdge(src, dst)
					}
				}
			}
		}
	}
	return b.Build(), nil
}
