package topology

import (
	"fmt"
	"math"
	"math/rand"

	"universalnet/internal/graph"
)

// G0 is the fixed spreading subgraph of Definition 3.9: the union of a
// (2a, n)-multitorus and a 4-regular expander on the same vertex set, with
// a = ⌈√(log m)⌉ rounded to satisfy the divisibility constraints. Every
// vertex has degree at most 12.
type G0 struct {
	Graph      *graph.Graph // the union (≤ 12-regular)
	Multitorus *graph.Graph // E₁: the (BlockSide, n)-multitorus
	Expander   *graph.Graph // E₂: the 4-regular expander overlay
	Blocks     []Block      // the partition into (BlockSide²)-tori 𝒯_1..𝒯_h
	N          int          // number of vertices n
	A          int          // the paper's a (block side is 2a)
	BlockSide  int          // 2a, the side of each partition torus
}

// H returns the number of partition tori h = n / (2a)².
func (g *G0) H() int { return len(g.Blocks) }

// G0BlockSide returns the block side 2a the paper prescribes for a host of
// size m: a = ⌈√(log₂ m)⌉, block side 2a, minimum 4.
func G0BlockSide(m int) int {
	if m < 2 {
		return 4
	}
	a := int(math.Ceil(math.Sqrt(math.Log2(float64(m)))))
	if a < 2 {
		a = 2
	}
	return 2 * a
}

// ValidG0Size reports whether n is a valid size for a G₀ with the given
// block side: n must be a perfect square whose side is divisible by the
// block side, and n ≥ 4·blockSide² (so there are at least four blocks).
func ValidG0Size(n, blockSide int) bool {
	N, err := SideLength(n)
	if err != nil {
		return false
	}
	return blockSide >= 3 && N%blockSide == 0 && N/blockSide >= 2
}

// NextValidG0Size returns the smallest n' ≥ n that satisfies ValidG0Size for
// the given block side: n' = (⌈√n / blockSide⌉ · blockSide)², at least
// (2·blockSide)².
func NextValidG0Size(n, blockSide int) int {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 2*blockSide {
		side = 2 * blockSide
	}
	if r := side % blockSide; r != 0 {
		side += blockSide - r
	}
	return side * side
}

// BuildG0 constructs G₀ for n guest processors and a host of size m, using
// the deterministic seed for the expander overlay. It returns an error when
// n violates the divisibility constraints (use NextValidG0Size to fix n up).
func BuildG0(n, m int, seed int64) (*G0, error) {
	blockSide := G0BlockSide(m)
	return BuildG0WithBlockSide(n, blockSide, seed)
}

// BuildG0WithBlockSide is BuildG0 with an explicit block side (2a), for
// experiments that sweep the block size independently of m.
func BuildG0WithBlockSide(n, blockSide int, seed int64) (*G0, error) {
	if !ValidG0Size(n, blockSide) {
		return nil, fmt.Errorf("topology: n=%d invalid for block side %d (need square side divisible by %d, ≥ %d)",
			n, blockSide, blockSide, 2*blockSide)
	}
	mt, err := Multitorus(blockSide, n)
	if err != nil {
		return nil, err
	}
	blocks, err := TorusPartition(blockSide, n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// 4-regular expander overlay, edge-disjoint from the multitorus so the
	// degree bound 8 + 4 = 12 holds exactly.
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 4
	}
	exp, err := RandomWithDegreeSequence(rng, deg, mt)
	if err != nil {
		return nil, fmt.Errorf("topology: expander overlay generation: %w", err)
	}
	return &G0{
		Graph:      graph.Union(mt, exp),
		Multitorus: mt,
		Expander:   exp,
		Blocks:     blocks,
		N:          n,
		A:          blockSide / 2,
		BlockSide:  blockSide,
	}, nil
}

// SampleGuest draws a random guest G ∈ 𝒰[G₀]: a c-regular graph on the same
// n vertices that contains G₀ as a subgraph. The residual degrees
// c − deg_{G₀}(v) are realized edge-disjointly from G₀ (Proposition 3.6(b)'s
// residual graph G' = G \ G₀). c must satisfy c ≥ maxdeg(G₀) and parity.
func (g *G0) SampleGuest(rng *rand.Rand, c int) (*graph.Graph, error) {
	if c < g.Graph.MaxDegree() {
		return nil, fmt.Errorf("topology: c=%d below G₀ max degree %d", c, g.Graph.MaxDegree())
	}
	residual := make([]int, g.N)
	total := 0
	for v := 0; v < g.N; v++ {
		residual[v] = c - g.Graph.Degree(v)
		total += residual[v]
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("topology: residual degree sum %d odd for c=%d", total, c)
	}
	rg, err := RandomWithDegreeSequence(rng, residual, g.Graph)
	if err != nil {
		return nil, err
	}
	guest := graph.Union(g.Graph, rg)
	if !guest.IsRegular(c) {
		return nil, fmt.Errorf("topology: sampled guest not %d-regular", c)
	}
	return guest, nil
}

// Validate checks the structural invariants of Definition 3.9: block
// partition covers all vertices exactly once, the multitorus and expander are
// edge-disjoint, degree bounds hold, and each block induces a torus in the
// multitorus (4-regular induced subgraph).
func (g *G0) Validate() error {
	if err := g.Graph.Validate(); err != nil {
		return err
	}
	if got := g.Graph.MaxDegree(); got > 12 {
		return fmt.Errorf("topology: G₀ max degree %d > 12", got)
	}
	if !g.Expander.IsRegular(4) {
		return fmt.Errorf("topology: expander overlay not 4-regular")
	}
	for _, e := range g.Expander.Edges() {
		if g.Multitorus.HasEdge(e.U, e.V) {
			return fmt.Errorf("topology: expander edge %v overlaps multitorus", e)
		}
	}
	seen := make([]bool, g.N)
	for bi := range g.Blocks {
		bl := &g.Blocks[bi]
		if len(bl.Vertices) != g.BlockSide*g.BlockSide {
			return fmt.Errorf("topology: block %d has %d vertices, want %d", bi, len(bl.Vertices), g.BlockSide*g.BlockSide)
		}
		for _, v := range bl.Vertices {
			if seen[v] {
				return fmt.Errorf("topology: vertex %d in two blocks", v)
			}
			seen[v] = true
		}
		sub, _, err := g.Multitorus.InducedSubgraph(bl.Vertices)
		if err != nil {
			return err
		}
		if !sub.IsRegular(4) {
			return fmt.Errorf("topology: block %d does not induce a 4-regular torus", bi)
		}
	}
	for v, s := range seen {
		if !s {
			return fmt.Errorf("topology: vertex %d in no block", v)
		}
	}
	return nil
}
