package topology

import (
	"math/rand"
	"testing"

	"universalnet/internal/graph"
)

func checkValid(t *testing.T) func(g *graph.Graph, err error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if verr := g.Validate(); verr != nil {
			t.Fatal(verr)
		}
		return g
	}
}

func TestPath(t *testing.T) {
	g := checkValid(t)(Path(5))
	if g.N() != 5 || g.M() != 4 {
		t.Errorf("path: n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Errorf("path diameter %d", g.Diameter())
	}
	if _, err := Path(0); err == nil {
		t.Error("Path(0) accepted")
	}
}

func TestRing(t *testing.T) {
	g := checkValid(t)(Ring(8))
	if !g.IsRegular(2) || g.Diameter() != 4 {
		t.Errorf("ring wrong: %v diam=%d", g, g.Diameter())
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) accepted")
	}
}

func TestComplete(t *testing.T) {
	g := checkValid(t)(Complete(6))
	if g.M() != 15 || !g.IsRegular(5) || g.Diameter() != 1 {
		t.Errorf("K6 wrong: %v", g)
	}
}

func TestStar(t *testing.T) {
	g := checkValid(t)(Star(5))
	if g.Degree(0) != 4 || g.M() != 4 {
		t.Errorf("star wrong: %v", g)
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := checkValid(t)(CompleteBinaryTree(3))
	if g.N() != 15 || g.M() != 14 {
		t.Errorf("tree wrong: %v", g)
	}
	if g.Girth() != -1 {
		t.Error("tree has a cycle")
	}
	if !g.IsConnected() {
		t.Error("tree disconnected")
	}
}

func TestHypercube(t *testing.T) {
	g := checkValid(t)(Hypercube(4))
	if g.N() != 16 || !g.IsRegular(4) || g.Diameter() != 4 {
		t.Errorf("Q4 wrong: %v diam=%d", g, g.Diameter())
	}
	// Q0 is a single vertex.
	g0 := checkValid(t)(Hypercube(0))
	if g0.N() != 1 || g0.M() != 0 {
		t.Errorf("Q0 wrong: %v", g0)
	}
}

func TestButterfly(t *testing.T) {
	d := 3
	g := checkValid(t)(Butterfly(d))
	if g.N() != (d+1)*(1<<d) {
		t.Errorf("BF(%d) n=%d", d, g.N())
	}
	// Interior levels degree 4, boundary levels degree 2.
	for r := 0; r < 1<<d; r++ {
		if got := g.Degree(ButterflyNode(d, 0, r)); got != 2 {
			t.Errorf("level-0 degree %d", got)
		}
		if got := g.Degree(ButterflyNode(d, d, r)); got != 2 {
			t.Errorf("level-d degree %d", got)
		}
		if got := g.Degree(ButterflyNode(d, 1, r)); got != 4 {
			t.Errorf("interior degree %d", got)
		}
	}
	if !g.IsConnected() {
		t.Error("butterfly disconnected")
	}
	// Any level-0 row reaches any level-d row in exactly d hops via bit fixing.
	if dist := g.BFS(ButterflyNode(d, 0, 0))[ButterflyNode(d, d, 5)]; dist != d {
		t.Errorf("level-0 to level-d distance %d, want %d", dist, d)
	}
}

func TestWrappedButterfly(t *testing.T) {
	d := 3
	g := checkValid(t)(WrappedButterfly(d))
	if g.N() != d*(1<<d) || !g.IsRegular(4) {
		t.Errorf("WBF wrong: %v", g)
	}
	if !g.IsConnected() {
		t.Error("wrapped butterfly disconnected")
	}
}

func TestCubeConnectedCycles(t *testing.T) {
	d := 3
	g := checkValid(t)(CubeConnectedCycles(d))
	if g.N() != d*(1<<d) || !g.IsRegular(3) {
		t.Errorf("CCC wrong: %v hist=%v", g, g.DegreeHistogram())
	}
	if !g.IsConnected() {
		t.Error("CCC disconnected")
	}
}

func TestShuffleExchange(t *testing.T) {
	g := checkValid(t)(ShuffleExchange(4))
	if g.N() != 16 || g.MaxDegree() > 3 {
		t.Errorf("SE wrong: %v", g)
	}
	if !g.IsConnected() {
		t.Error("shuffle-exchange disconnected")
	}
}

func TestDeBruijn(t *testing.T) {
	g := checkValid(t)(DeBruijn(4))
	if g.N() != 16 || g.MaxDegree() > 4 {
		t.Errorf("dB wrong: %v", g)
	}
	if !g.IsConnected() {
		t.Error("de Bruijn disconnected")
	}
	// Diameter of de Bruijn on 2^d vertices is ≤ d.
	if g.Diameter() > 4 {
		t.Errorf("dB diameter %d > 4", g.Diameter())
	}
}

func TestMeshAndTorus(t *testing.T) {
	mesh := checkValid(t)(Mesh(16))
	if mesh.M() != 24 || mesh.Diameter() != 6 {
		t.Errorf("mesh wrong: %v diam=%d", mesh, mesh.Diameter())
	}
	torus := checkValid(t)(Torus(16))
	if !torus.IsRegular(4) || torus.Diameter() != 4 {
		t.Errorf("torus wrong: %v diam=%d", torus, torus.Diameter())
	}
	if !mesh.IsSubgraphOf(torus) {
		t.Error("mesh not a subgraph of torus")
	}
	if _, err := Mesh(15); err == nil {
		t.Error("non-square mesh accepted")
	}
	if _, err := Torus(4); err == nil {
		t.Error("too-small torus accepted")
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	N := 7
	for i := 0; i < N*N; i++ {
		x, y := MeshCoord(N, i)
		if MeshIndex(N, x, y) != i {
			t.Fatalf("coord round trip failed at %d", i)
		}
	}
}

func TestMultitorus(t *testing.T) {
	// 12×12 torus with 4×4 blocks.
	g := checkValid(t)(Multitorus(4, 144))
	if g.MinDegree() < 4 || g.MaxDegree() > 8 {
		t.Errorf("multitorus degrees out of [4,8]: %v", g.DegreeHistogram())
	}
	torus := checkValid(t)(Torus(144))
	if !torus.IsSubgraphOf(g) {
		t.Error("torus not subgraph of multitorus")
	}
	if _, err := Multitorus(5, 144); err == nil {
		t.Error("non-dividing block side accepted")
	}
	if _, err := Multitorus(2, 144); err == nil {
		t.Error("tiny block side accepted")
	}
}

func TestTorusPartition(t *testing.T) {
	blocks, err := TorusPartition(4, 144)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 9 {
		t.Fatalf("partition has %d blocks, want 9", len(blocks))
	}
	seen := make(map[int]bool)
	for bi := range blocks {
		bl := &blocks[bi]
		if len(bl.Vertices) != 16 {
			t.Errorf("block %d size %d", bi, len(bl.Vertices))
		}
		for _, v := range bl.Vertices {
			if seen[v] {
				t.Errorf("vertex %d repeated", v)
			}
			seen[v] = true
			if !bl.Contains(v) {
				t.Errorf("block does not contain own vertex %d", v)
			}
			if BlockOf(blocks, v) != bi {
				t.Errorf("BlockOf(%d) != %d", v, bi)
			}
			dx, dy := bl.Rel(v)
			if bl.Index(dx, dy) != v {
				t.Errorf("Rel/Index round trip failed for %d", v)
			}
		}
	}
	if len(seen) != 144 {
		t.Errorf("partition covers %d vertices", len(seen))
	}
}

func TestTorusDistance(t *testing.T) {
	if d := TorusDistance(4, 0, 0, 3, 3); d != 2 {
		t.Errorf("wrap distance = %d, want 2", d)
	}
	if d := TorusDistance(4, 0, 0, 2, 2); d != 4 {
		t.Errorf("distance = %d, want 4", d)
	}
	if d := TorusDistance(5, 1, 1, 1, 1); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {30, 5}, {64, 16}} {
		if tc.n*tc.d%2 != 0 {
			continue
		}
		g, err := RandomRegular(rng, tc.n, tc.d)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.IsRegular(tc.d) {
			t.Errorf("(%d,%d): not regular: %v", tc.n, tc.d, g.DegreeHistogram())
		}
	}
}

func TestRandomRegularOddSumRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRegular(rng, 5, 3); err == nil {
		t.Error("odd degree sum accepted")
	}
}

func TestRandomWithDegreeSequenceForbidden(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	forbidden, err := Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]int, 12)
	for i := range seq {
		seq[i] = 4
	}
	g, err := RandomWithDegreeSequence(rng, seq, forbidden)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsRegular(4) {
		t.Errorf("not 4-regular: %v", g.DegreeHistogram())
	}
	for _, e := range forbidden.Edges() {
		if g.HasEdge(e.U, e.V) {
			t.Errorf("forbidden edge %v present", e)
		}
	}
}

func TestRandomGuestConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomGuest(rng, 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() || !g.IsRegular(16) {
		t.Errorf("guest invalid: %v", g)
	}
}

func TestG0Construction(t *testing.T) {
	// Block side 4 (a = 2), side 16 → n = 256, h = 16 blocks.
	g0, err := BuildG0WithBlockSide(256, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
	if g0.H() != 16 {
		t.Errorf("h = %d, want 16", g0.H())
	}
	if g0.A != 2 || g0.BlockSide != 4 {
		t.Errorf("a=%d blockSide=%d", g0.A, g0.BlockSide)
	}
	if !g0.Multitorus.IsSubgraphOf(g0.Graph) || !g0.Expander.IsSubgraphOf(g0.Graph) {
		t.Error("components not subgraphs of G0")
	}
	if g0.Graph.MaxDegree() > 12 {
		t.Errorf("G0 max degree %d", g0.Graph.MaxDegree())
	}
	if !g0.Graph.IsConnected() {
		t.Error("G0 disconnected")
	}
}

func TestG0SampleGuest(t *testing.T) {
	g0, err := BuildG0WithBlockSide(144, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	guest, err := g0.SampleGuest(rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !guest.IsRegular(16) {
		t.Errorf("guest degrees: %v", guest.DegreeHistogram())
	}
	if !g0.Graph.IsSubgraphOf(guest) {
		t.Error("G0 not a subgraph of sampled guest")
	}
	// Residual graph is edge-disjoint from G0 by construction.
	res := graph.Residual(guest, g0.Graph)
	if res.M() != guest.M()-g0.Graph.M() {
		t.Errorf("residual edge count %d, want %d", res.M(), guest.M()-g0.Graph.M())
	}
	// c below max degree must fail.
	if _, err := g0.SampleGuest(rng, 6); err == nil {
		t.Error("too-small c accepted")
	}
}

func TestG0SizeHelpers(t *testing.T) {
	if !ValidG0Size(256, 4) {
		t.Error("256/4 should be valid")
	}
	if ValidG0Size(255, 4) {
		t.Error("non-square accepted")
	}
	if ValidG0Size(16, 4) {
		t.Error("single-block size accepted")
	}
	if got := NextValidG0Size(100, 4); got != 144 {
		t.Errorf("NextValidG0Size(100,4) = %d, want 144", got)
	}
	if got := NextValidG0Size(1, 4); got != 64 {
		t.Errorf("NextValidG0Size(1,4) = %d, want 64", got)
	}
	if !ValidG0Size(NextValidG0Size(500, 6), 6) {
		t.Error("NextValidG0Size result invalid")
	}
	if bs := G0BlockSide(1 << 16); bs != 8 {
		t.Errorf("G0BlockSide(2^16) = %d, want 8", bs)
	}
	if bs := G0BlockSide(1); bs != 4 {
		t.Errorf("G0BlockSide(1) = %d, want 4", bs)
	}
}

func TestBuildG0FromHostSize(t *testing.T) {
	m := 1 << 9 // block side = 2·⌈√9⌉ = 6
	bs := G0BlockSide(m)
	n := NextValidG0Size(200, bs)
	g0, err := BuildG0(n, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g0.BlockSide != bs {
		t.Errorf("block side %d, want %d", g0.BlockSide, bs)
	}
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLogHelpers(t *testing.T) {
	if Log2(1) != 0 || Log2(2) != 1 || Log2(3) != 1 || Log2(1024) != 10 {
		t.Error("Log2 wrong")
	}
	if Log2Ceil(1) != 0 || Log2Ceil(3) != 2 || Log2Ceil(1024) != 10 || Log2Ceil(1025) != 11 {
		t.Error("Log2Ceil wrong")
	}
	if !IsPowerOfTwo(64) || IsPowerOfTwo(0) || IsPowerOfTwo(12) {
		t.Error("IsPowerOfTwo wrong")
	}
}

func TestSideLength(t *testing.T) {
	if s, err := SideLength(49); err != nil || s != 7 {
		t.Errorf("SideLength(49) = %d, %v", s, err)
	}
	if _, err := SideLength(50); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := SideLength(0); err == nil {
		t.Error("zero accepted")
	}
	// Large square where float sqrt may be inexact.
	big := 1 << 30
	if s, err := SideLength(big); err != nil || s*s != big {
		t.Errorf("SideLength(2^30) = %d, %v", s, err)
	}
}
