package topology

import (
	"fmt"

	"universalnet/internal/graph"
)

// MeshCoord converts a vertex index of an N×N mesh/torus into its (x, y)
// coordinate, row-major: index = x·N + y.
func MeshCoord(N, index int) (x, y int) { return index / N, index % N }

// MeshIndex is the inverse of MeshCoord.
func MeshIndex(N, x, y int) int { return x*N + y }

// Mesh returns the √n × √n mesh (Definition 3.8). n must be a perfect square.
func Mesh(n int) (*graph.Graph, error) {
	N, err := SideLength(n)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			if x+1 < N {
				b.MustAddEdge(MeshIndex(N, x, y), MeshIndex(N, x+1, y))
			}
			if y+1 < N {
				b.MustAddEdge(MeshIndex(N, x, y), MeshIndex(N, x, y+1))
			}
		}
	}
	return b.Build(), nil
}

// Torus returns the √n × √n torus: the mesh plus row and column wraparound
// edges (Definition 3.8). n must be a perfect square with √n ≥ 3.
func Torus(n int) (*graph.Graph, error) {
	N, err := SideLength(n)
	if err != nil {
		return nil, err
	}
	if N < 3 {
		return nil, fmt.Errorf("topology: torus needs side ≥ 3, got %d", N)
	}
	b := graph.NewBuilder(n)
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			b.MustAddEdge(MeshIndex(N, x, y), MeshIndex(N, (x+1)%N, y))
			b.MustAddEdge(MeshIndex(N, x, y), MeshIndex(N, x, (y+1)%N))
		}
	}
	return b.Build(), nil
}

// Multitorus returns the (a, n)-multitorus of Definition 3.8: the √n × √n
// torus in which each aligned a×a block is extended by wraparound edges to
// form an a×a torus. Requirements: n a perfect square, a ≥ 3, and a | √n.
// Every vertex has degree at most 8 (4 torus edges + up to 2 block wrap
// edges per dimension).
func Multitorus(a, n int) (*graph.Graph, error) {
	N, err := SideLength(n)
	if err != nil {
		return nil, err
	}
	if a < 3 {
		return nil, fmt.Errorf("topology: multitorus block side %d < 3", a)
	}
	if N%a != 0 {
		return nil, fmt.Errorf("topology: block side %d does not divide torus side %d", a, N)
	}
	t, err := Torus(n)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	for _, e := range t.Edges() {
		b.MustAddEdge(e.U, e.V)
	}
	// Block wraparound edges: within each aligned a×a block, join the first
	// and last row, and the first and last column, of the block.
	for bx := 0; bx < N; bx += a {
		for by := 0; by < N; by += a {
			for k := 0; k < a; k++ {
				b.MustAddEdge(MeshIndex(N, bx, by+k), MeshIndex(N, bx+a-1, by+k))
				b.MustAddEdge(MeshIndex(N, bx+k, by), MeshIndex(N, bx+k, by+a-1))
			}
		}
	}
	return b.Build(), nil
}

// Block identifies one aligned a×a block (sub-torus) of an N×N multitorus:
// the torus 𝒯_j of the paper's partition. Vertices lists the member vertex
// indices in row-major block order.
type Block struct {
	A        int   // block side length
	N        int   // torus side length
	BX, BY   int   // top-left corner coordinates (multiples of A)
	Vertices []int // the A² member vertices, row-major within the block
}

// Index returns the vertex at block-relative coordinate (dx, dy),
// 0 ≤ dx, dy < A.
func (bl *Block) Index(dx, dy int) int {
	return MeshIndex(bl.N, bl.BX+dx, bl.BY+dy)
}

// Contains reports whether vertex v lies in the block.
func (bl *Block) Contains(v int) bool {
	x, y := MeshCoord(bl.N, v)
	return x >= bl.BX && x < bl.BX+bl.A && y >= bl.BY && y < bl.BY+bl.A
}

// Rel returns the block-relative coordinates of v; v must be in the block.
func (bl *Block) Rel(v int) (dx, dy int) {
	x, y := MeshCoord(bl.N, v)
	dx, dy = x-bl.BX, y-bl.BY
	if dx < 0 || dx >= bl.A || dy < 0 || dy >= bl.A {
		panic(fmt.Sprintf("topology: vertex %d not in block (%d,%d)", v, bl.BX, bl.BY))
	}
	return dx, dy
}

// TorusPartition partitions the vertices of an (a, n)-multitorus into its
// n/a² aligned a×a sub-tori 𝒯_1, …, 𝒯_h (the partition used throughout
// Section 3.3). The same parameter checks as Multitorus apply.
func TorusPartition(a, n int) ([]Block, error) {
	N, err := SideLength(n)
	if err != nil {
		return nil, err
	}
	if a < 3 || N%a != 0 {
		return nil, fmt.Errorf("topology: invalid partition parameters a=%d, N=%d", a, N)
	}
	var blocks []Block
	for bx := 0; bx < N; bx += a {
		for by := 0; by < N; by += a {
			bl := Block{A: a, N: N, BX: bx, BY: by}
			bl.Vertices = make([]int, 0, a*a)
			for dx := 0; dx < a; dx++ {
				for dy := 0; dy < a; dy++ {
					bl.Vertices = append(bl.Vertices, bl.Index(dx, dy))
				}
			}
			blocks = append(blocks, bl)
		}
	}
	return blocks, nil
}

// BlockOf returns the index into blocks of the block containing v.
func BlockOf(blocks []Block, v int) int {
	if len(blocks) == 0 {
		return -1
	}
	N, a := blocks[0].N, blocks[0].A
	x, y := MeshCoord(N, v)
	bx, by := x/a, y/a
	perRow := N / a
	idx := bx*perRow + by
	if idx < len(blocks) && blocks[idx].Contains(v) {
		return idx
	}
	// Fallback linear scan (defensive; should not happen).
	for i := range blocks {
		if blocks[i].Contains(v) {
			return i
		}
	}
	return -1
}

// TorusDistance returns the hop distance between two vertices of an a×a
// torus given their block-relative coordinates.
func TorusDistance(a, x1, y1, x2, y2 int) int {
	dx := absInt(x1 - x2)
	if a-dx < dx {
		dx = a - dx
	}
	dy := absInt(y1 - y2)
	if a-dy < dy {
		dy = a - dy
	}
	return dx + dy
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
