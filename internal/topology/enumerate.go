package topology

import (
	"fmt"

	"universalnet/internal/graph"
)

// EnumerateRegularGraphs returns every labeled simple c-regular graph on n
// vertices, by the same backtracking as the exact counter (so the two are
// independent implementations that must agree — tested). The limit guards
// against accidental exponential blowups; enumeration fails if the count
// would exceed it.
func EnumerateRegularGraphs(n, c, limit int) ([]*graph.Graph, error) {
	if n < 0 || c < 0 {
		return nil, fmt.Errorf("topology: negative parameters")
	}
	if n == 0 {
		return nil, nil
	}
	if c >= n {
		return nil, nil // no simple c-regular graph exists
	}
	if n > 12 {
		return nil, fmt.Errorf("topology: enumeration infeasible for n=%d", n)
	}
	if n*c%2 != 0 {
		return nil, nil
	}
	if limit <= 0 {
		limit = 100000
	}
	residual := make([]int, n)
	for i := range residual {
		residual[i] = c
	}
	var out []*graph.Graph
	var edges []graph.Edge
	var rec func(v int) error
	rec = func(v int) error {
		for v < n && residual[v] == 0 {
			v++
		}
		if v == n {
			g, err := graph.FromEdges(n, edges)
			if err != nil {
				return err
			}
			out = append(out, g)
			if len(out) > limit {
				return fmt.Errorf("topology: enumeration exceeds limit %d", limit)
			}
			return nil
		}
		need := residual[v]
		var candidates []int
		for u := v + 1; u < n; u++ {
			if residual[u] > 0 {
				candidates = append(candidates, u)
			}
		}
		var choose func(idx, picked int) error
		choose = func(idx, picked int) error {
			if picked == need {
				return rec(v + 1)
			}
			if len(candidates)-idx < need-picked {
				return nil
			}
			u := candidates[idx]
			// Take u.
			residual[u]--
			residual[v]--
			edges = append(edges, graph.NewEdge(v, u))
			if err := choose(idx+1, picked+1); err != nil {
				return err
			}
			edges = edges[:len(edges)-1]
			residual[v]++
			residual[u]++
			// Skip u.
			return choose(idx+1, picked)
		}
		return choose(0, 0)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}
