package topology

import (
	"errors"
	"fmt"
	"math/rand"

	"universalnet/internal/graph"
)

// ErrGenerationFailed is returned when randomized graph generation fails to
// produce a valid graph within the retry budget.
var ErrGenerationFailed = errors.New("topology: random graph generation exhausted retries")

// maxRestarts bounds the number of full restarts in stub-matching generators.
const maxRestarts = 200

// RandomRegular generates a uniform-ish random simple d-regular graph on n
// vertices using incremental stub matching with restarts (Steger–Wormald).
// n·d must be even and d < n. Random d-regular graphs for d ≥ 3 are expanders
// with high probability, which is how the class 𝒰' (c = 16) and the expander
// component of G₀ are realized.
func RandomRegular(rng *rand.Rand, n, d int) (*graph.Graph, error) {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = d
	}
	return RandomWithDegreeSequence(rng, seq, nil)
}

// RandomWithDegreeSequence generates a random simple graph with the given
// degree sequence, avoiding every edge of forbidden (which may be nil). This
// is how members of 𝒰[G₀] are sampled: the residual degrees c − deg_{G₀}(v)
// are realized edge-disjointly from G₀ and the union is taken.
func RandomWithDegreeSequence(rng *rand.Rand, seq []int, forbidden *graph.Graph) (*graph.Graph, error) {
	n := len(seq)
	total := 0
	for v, d := range seq {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("topology: degree %d at vertex %d out of range [0,%d)", d, v, n)
		}
		total += d
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("topology: degree sequence sum %d is odd", total)
	}
	if forbidden != nil && forbidden.N() > n {
		return nil, fmt.Errorf("topology: forbidden graph has %d vertices > %d", forbidden.N(), n)
	}

	for restart := 0; restart < maxRestarts; restart++ {
		g, ok := tryDegreeSequence(rng, seq, forbidden)
		if ok {
			return g, nil
		}
	}
	return nil, ErrGenerationFailed
}

// tryDegreeSequence performs one stub-matching pass. It returns ok = false
// when it dead-ends (all remaining stub pairs are conflicting).
func tryDegreeSequence(rng *rand.Rand, seq []int, forbidden *graph.Graph) (*graph.Graph, bool) {
	n := len(seq)
	// stubs[i] = vertex owning stub i.
	var stubs []int
	for v, d := range seq {
		for j := 0; j < d; j++ {
			stubs = append(stubs, v)
		}
	}
	b := graph.NewBuilder(n)
	conflict := func(u, v int) bool {
		if u == v {
			return true
		}
		if b.HasEdge(u, v) {
			return true
		}
		return forbidden != nil && forbidden.HasEdge(u, v)
	}
	// Repeatedly pick two random remaining stubs; on conflict retry a bounded
	// number of times, then check exhaustively whether any non-conflicting
	// pair remains (dead-end detection).
	live := len(stubs)
	for live > 1 {
		placed := false
		for attempt := 0; attempt < 50; attempt++ {
			i := rng.Intn(live)
			j := rng.Intn(live)
			if i == j {
				continue
			}
			u, v := stubs[i], stubs[j]
			if conflict(u, v) {
				continue
			}
			b.MustAddEdge(u, v)
			// Remove both stubs (order matters: remove the larger index first).
			if i < j {
				i, j = j, i
			}
			stubs[i] = stubs[live-1]
			live--
			stubs[j] = stubs[live-1]
			live--
			placed = true
			break
		}
		if placed {
			continue
		}
		// Exhaustive check for any feasible pair.
		found := false
	outer:
		for i := 0; i < live && !found; i++ {
			for j := i + 1; j < live; j++ {
				if !conflict(stubs[i], stubs[j]) {
					u, v := stubs[i], stubs[j]
					b.MustAddEdge(u, v)
					stubs[j] = stubs[live-1]
					live--
					stubs[i] = stubs[live-1]
					live--
					found = true
					break outer
				}
			}
		}
		if !found {
			return nil, false // dead end; caller restarts
		}
	}
	return b.Build(), true
}

// RandomGuest samples a random c-regular n-vertex guest network from the
// class 𝒰' of Section 3 (c = 16 in the paper). It retries until the graph is
// connected, which holds with overwhelming probability for c ≥ 3.
func RandomGuest(rng *rand.Rand, n, c int) (*graph.Graph, error) {
	if n*c%2 != 0 {
		return nil, fmt.Errorf("topology: n·c = %d·%d is odd", n, c)
	}
	for attempt := 0; attempt < 20; attempt++ {
		g, err := RandomRegular(rng, n, c)
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, ErrGenerationFailed
}
