package topology

import (
	"fmt"

	"universalnet/internal/graph"
)

// Additional members of the paper's "famous constant-degree networks"
// catalog (§1): the mesh of trees, the X-tree, 3-dimensional tori, and the
// Kautz graph.

// MeshOfTrees returns the N×N mesh of trees: an N×N grid of leaves, a
// complete binary tree over every row and every column (internal tree nodes
// are extra vertices). N must be a power of two. Degree ≤ 6 at the leaves
// corners... precisely: leaves have degree 2 (their row- and column-tree
// parents), internal tree nodes degree ≤ 3. Size N² + 2N(N−1).
func MeshOfTrees(N int) (*graph.Graph, error) {
	if N < 2 || !IsPowerOfTwo(N) {
		return nil, fmt.Errorf("topology: mesh of trees needs power-of-two side ≥ 2, got %d", N)
	}
	// Vertex layout: leaves [0, N²); then for each row r: N−1 internal
	// nodes; then for each column c: N−1 internal nodes.
	leaves := N * N
	rowBase := leaves
	perTree := N - 1
	colBase := rowBase + N*perTree
	total := colBase + N*perTree
	b := graph.NewBuilder(total)
	// A complete binary tree over positions 0..N-1: internal nodes indexed
	// 1..N-1 heap-style (node i has children 2i, 2i+1; nodes N..2N-1 are the
	// leaves).
	link := func(base int, leafOf func(pos int) int) {
		for i := 1; i < N; i++ {
			node := base + i - 1
			for _, child := range []int{2 * i, 2*i + 1} {
				var cv int
				if child >= N {
					cv = leafOf(child - N)
				} else {
					cv = base + child - 1
				}
				b.MustAddEdge(node, cv)
			}
		}
	}
	for r := 0; r < N; r++ {
		link(rowBase+r*perTree, func(pos int) int { return r*N + pos })
	}
	for c := 0; c < N; c++ {
		link(colBase+c*perTree, func(pos int) int { return pos*N + c })
	}
	return b.Build(), nil
}

// XTree returns the X-tree of depth d: the complete binary tree plus edges
// joining consecutive nodes of each level. Degree ≤ 5.
func XTree(depth int) (*graph.Graph, error) {
	if depth < 1 || depth > 24 {
		return nil, fmt.Errorf("topology: X-tree depth %d out of range [1,24]", depth)
	}
	n := (1 << (depth + 1)) - 1
	b := graph.NewBuilder(n)
	for i := 0; 2*i+2 < n; i++ {
		b.MustAddEdge(i, 2*i+1)
		b.MustAddEdge(i, 2*i+2)
	}
	// Level l spans indices [2^l − 1, 2^{l+1} − 2].
	for l := 1; l <= depth; l++ {
		lo := (1 << l) - 1
		hi := (1 << (l + 1)) - 2
		for i := lo; i < hi; i++ {
			b.MustAddEdge(i, i+1)
		}
	}
	return b.Build(), nil
}

// Torus3D returns the L×L×L torus (6-regular for L ≥ 3).
func Torus3D(L int) (*graph.Graph, error) {
	if L < 3 {
		return nil, fmt.Errorf("topology: 3D torus needs side ≥ 3, got %d", L)
	}
	n := L * L * L
	idx := func(x, y, z int) int {
		return ((x%L+L)%L)*L*L + ((y%L+L)%L)*L + (z%L+L)%L
	}
	b := graph.NewBuilder(n)
	for x := 0; x < L; x++ {
		for y := 0; y < L; y++ {
			for z := 0; z < L; z++ {
				v := idx(x, y, z)
				b.MustAddEdge(v, idx(x+1, y, z))
				b.MustAddEdge(v, idx(x, y+1, z))
				b.MustAddEdge(v, idx(x, y, z+1))
			}
		}
	}
	return b.Build(), nil
}

// Kautz returns the Kautz graph K(b, d): vertices are the strings of length
// d+1 over an alphabet of b+1 symbols with no two consecutive symbols
// equal; v is adjacent to its out-neighbors (shift left, append symbol).
// (b+1)·b^d vertices; degree ≤ 2b as an undirected simple graph; diameter
// at most d+1 (one shift per symbol of the target string).
func Kautz(base, d int) (*graph.Graph, error) {
	if base < 2 || d < 1 {
		return nil, fmt.Errorf("topology: Kautz needs base ≥ 2 and d ≥ 1")
	}
	n := (base + 1) * pow(base, d)
	if n > 1<<22 {
		return nil, fmt.Errorf("topology: Kautz graph too large (%d vertices)", n)
	}
	// Encode a string s₀s₁…s_d (s_i ∈ [0, base], s_i ≠ s_{i+1}) as an
	// integer: s₀ has base+1 choices, each later symbol base choices
	// (relative rank among the symbols ≠ previous).
	encode := func(syms []int) int {
		code := syms[0]
		prev := syms[0]
		for _, s := range syms[1:] {
			r := s
			if s > prev {
				r--
			}
			code = code*base + r
			prev = s
		}
		return code
	}
	b := graph.NewBuilder(n)
	// Enumerate all strings via DFS.
	var dfs func(syms []int)
	dfs = func(syms []int) {
		if len(syms) == d+1 {
			v := encode(syms)
			last := syms[len(syms)-1]
			for s := 0; s <= base; s++ {
				if s == last {
					continue
				}
				next := append(append([]int(nil), syms[1:]...), s)
				w := encode(next)
				if v != w {
					b.MustAddEdge(v, w)
				}
			}
			return
		}
		for s := 0; s <= base; s++ {
			if len(syms) > 0 && syms[len(syms)-1] == s {
				continue
			}
			dfs(append(syms, s))
		}
	}
	dfs(nil)
	return b.Build(), nil
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
