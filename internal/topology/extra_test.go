package topology

import "testing"

func TestMeshOfTrees(t *testing.T) {
	N := 4
	g := checkValid(t)(MeshOfTrees(N))
	want := N*N + 2*N*(N-1)
	if g.N() != want {
		t.Errorf("n = %d, want %d", g.N(), want)
	}
	if !g.IsConnected() {
		t.Error("mesh of trees disconnected")
	}
	if g.MaxDegree() > 3 {
		t.Errorf("max degree %d > 3", g.MaxDegree())
	}
	// Leaves (grid points) have degree 2: one row-tree and one column-tree
	// parent.
	for leaf := 0; leaf < N*N; leaf++ {
		if g.Degree(leaf) != 2 {
			t.Fatalf("leaf %d degree %d, want 2", leaf, g.Degree(leaf))
		}
	}
	if _, err := MeshOfTrees(3); err == nil {
		t.Error("non-power-of-two side accepted")
	}
	if _, err := MeshOfTrees(1); err == nil {
		t.Error("side 1 accepted")
	}
}

func TestXTree(t *testing.T) {
	g := checkValid(t)(XTree(3))
	if g.N() != 15 {
		t.Errorf("n = %d", g.N())
	}
	// Tree edges 14 + level edges (1 + 3 + 7) = 25.
	if g.M() != 25 {
		t.Errorf("m = %d, want 25", g.M())
	}
	if g.MaxDegree() > 5 {
		t.Errorf("max degree %d > 5", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("X-tree disconnected")
	}
	// X-tree diameter is O(depth), much below the tree's 2·depth for wide
	// levels: check it does not exceed 2·depth.
	if g.Diameter() > 6 {
		t.Errorf("diameter %d > 6", g.Diameter())
	}
	if _, err := XTree(0); err == nil {
		t.Error("depth 0 accepted")
	}
}

func TestTorus3D(t *testing.T) {
	g := checkValid(t)(Torus3D(3))
	if g.N() != 27 || !g.IsRegular(6) {
		t.Errorf("3D torus wrong: %v %v", g, g.DegreeHistogram())
	}
	if !g.IsConnected() {
		t.Error("3D torus disconnected")
	}
	// Diameter of L³ torus is 3·⌊L/2⌋.
	if g.Diameter() != 3 {
		t.Errorf("diameter %d, want 3", g.Diameter())
	}
	if _, err := Torus3D(2); err == nil {
		t.Error("side 2 accepted")
	}
}

func TestKautz(t *testing.T) {
	g := checkValid(t)(Kautz(2, 2))
	// K(2,2): (2+1)·2² = 12 vertices, diameter ≤ 3, degree ≤ 4.
	if g.N() != 12 {
		t.Errorf("n = %d, want 12", g.N())
	}
	if g.MaxDegree() > 4 {
		t.Errorf("max degree %d > 4", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("Kautz disconnected")
	}
	if g.Diameter() > 3 {
		t.Errorf("diameter %d > 3", g.Diameter())
	}
	g3 := checkValid(t)(Kautz(2, 3))
	if g3.N() != 24 {
		t.Errorf("K(2,3) n = %d, want 24", g3.N())
	}
	if g3.Diameter() > 4 {
		t.Errorf("K(2,3) diameter %d > 4", g3.Diameter())
	}
	if _, err := Kautz(1, 2); err == nil {
		t.Error("base 1 accepted")
	}
	if _, err := Kautz(10, 10); err == nil {
		t.Error("oversized Kautz accepted")
	}
}

func TestMultibutterfly(t *testing.T) {
	d, mult := 4, 2
	g := checkValid(t)(Multibutterfly(d, mult, 7))
	if g.N() != (d+1)*(1<<d) {
		t.Errorf("n = %d", g.N())
	}
	if !g.IsConnected() {
		t.Error("multibutterfly disconnected")
	}
	if g.MaxDegree() > 4*mult {
		t.Errorf("degree %d > 4·mult", g.MaxDegree())
	}
	// Level-0 nodes have only up-edges: degree ≤ 2·mult.
	for r := 0; r < 1<<d; r++ {
		if deg := g.Degree(MultibutterflyNode(d, 0, r)); deg > 2*mult {
			t.Errorf("level-0 degree %d > 2·mult", deg)
		}
	}
	// Determinism.
	g2 := checkValid(t)(Multibutterfly(d, mult, 7))
	if !g.Equal(g2) {
		t.Error("same seed gave different multibutterflies")
	}
	if _, err := Multibutterfly(0, 2, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Multibutterfly(3, 0, 1); err == nil {
		t.Error("mult=0 accepted")
	}
	if _, err := Multibutterfly(3, 9, 1); err == nil {
		t.Error("mult=9 accepted")
	}
}

func TestMultibutterflyRoutesLikeButterfly(t *testing.T) {
	// Any level-0 row reaches any level-d row in exactly d hops (each hop
	// descends one level and halves the candidate block).
	d := 4
	g := checkValid(t)(Multibutterfly(d, 2, 9))
	dist := g.BFS(MultibutterflyNode(d, 0, 3))
	for r := 0; r < 1<<d; r++ {
		if got := dist[MultibutterflyNode(d, d, r)]; got != d {
			t.Errorf("level-0 → level-%d row %d distance %d, want %d", d, r, got, d)
		}
	}
}

func TestEnumerateRegularGraphsMatchesExactCount(t *testing.T) {
	// Two independent implementations (enumerator vs counter) must agree.
	cases := []struct {
		n, c int
		want int
	}{
		{4, 1, 3}, {6, 1, 15}, {4, 2, 3}, {5, 2, 12}, {6, 2, 70},
		{4, 3, 1}, {6, 3, 70}, {6, 4, 15}, {5, 4, 1},
	}
	for _, tc := range cases {
		gs, err := EnumerateRegularGraphs(tc.n, tc.c, 100000)
		if err != nil {
			t.Fatalf("n=%d c=%d: %v", tc.n, tc.c, err)
		}
		if len(gs) != tc.want {
			t.Errorf("n=%d c=%d: enumerated %d, want %d", tc.n, tc.c, len(gs), tc.want)
		}
		// Every enumerated graph is valid, c-regular, and distinct.
		seen := make(map[uint64]bool)
		for _, g := range gs {
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if !g.IsRegular(tc.c) {
				t.Fatalf("n=%d c=%d: non-regular graph enumerated", tc.n, tc.c)
			}
			h := g.Hash()
			if seen[h] {
				t.Fatalf("n=%d c=%d: duplicate graph", tc.n, tc.c)
			}
			seen[h] = true
		}
	}
}

func TestEnumerateRegularGraphsEdgeCases(t *testing.T) {
	if gs, err := EnumerateRegularGraphs(5, 3, 0); err != nil || gs != nil {
		t.Errorf("odd sum: %v %v", gs, err)
	}
	if _, err := EnumerateRegularGraphs(13, 3, 0); err == nil {
		t.Error("oversized n accepted")
	}
	gs, err := EnumerateRegularGraphs(6, 3, 5)
	if err == nil {
		t.Errorf("limit not enforced: got %d graphs", len(gs))
	}
}
