// Package topology constructs the constant-degree processor networks that
// appear in the paper: meshes, tori, the (a,n)-multitorus of Definition 3.8,
// butterflies, cube-connected cycles, shuffle-exchange and de Bruijn
// networks, hypercubes, trees, random regular graphs (the counting class 𝒰'),
// and the fixed subgraph G₀ of Definition 3.9.
//
// All constructors return *graph.Graph values on vertices 0..n-1 and report
// errors for invalid parameters rather than panicking, so command-line tools
// can surface them.
package topology

import (
	"fmt"
	"math"

	"universalnet/internal/graph"
)

// Path returns the path (linear array) on n ≥ 1 vertices.
func Path(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: path needs n ≥ 1, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(i, i+1)
	}
	return b.Build(), nil
}

// Ring returns the cycle on n ≥ 3 vertices.
func Ring(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n ≥ 3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(i, (i+1)%n)
	}
	return b.Build(), nil
}

// Complete returns the complete network K_n (n ≥ 1). The paper's simulation
// results for "the complete network" use this as guest.
func Complete(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: complete needs n ≥ 1, got %d", n)
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build(), nil
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs n ≥ 2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build(), nil
}

// CompleteBinaryTree returns the complete binary tree with n = 2^{d+1}-1
// vertices in heap order (children of i are 2i+1, 2i+2).
func CompleteBinaryTree(depth int) (*graph.Graph, error) {
	if depth < 0 || depth > 30 {
		return nil, fmt.Errorf("topology: tree depth %d out of range [0,30]", depth)
	}
	n := (1 << (depth + 1)) - 1
	b := graph.NewBuilder(n)
	for i := 0; 2*i+2 < n; i++ {
		b.MustAddEdge(i, 2*i+1)
		b.MustAddEdge(i, 2*i+2)
	}
	return b.Build(), nil
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices; vertex i is
// adjacent to i XOR 2^j for each dimension j. Degree d (not constant, but the
// classic reference point for the constant-degree derivatives below).
func Hypercube(d int) (*graph.Graph, error) {
	if d < 0 || d > 30 {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of range [0,30]", d)
	}
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			w := v ^ (1 << j)
			if v < w {
				b.MustAddEdge(v, w)
			}
		}
	}
	return b.Build(), nil
}

// ButterflyNode maps a butterfly coordinate (level ∈ [0,d], row ∈ [0,2^d))
// to its vertex index in the graph returned by Butterfly.
func ButterflyNode(d, level, row int) int { return level*(1<<d) + row }

// Butterfly returns the (unwrapped) d-dimensional butterfly network:
// (d+1)·2^d vertices arranged in levels 0..d of 2^d rows. Node (l, r) is
// joined to (l+1, r) (straight edge) and (l+1, r XOR 2^l) (cross edge).
// Interior nodes have degree 4; level-0 and level-d nodes have degree 2.
func Butterfly(d int) (*graph.Graph, error) {
	if d < 1 || d > 24 {
		return nil, fmt.Errorf("topology: butterfly dimension %d out of range [1,24]", d)
	}
	rows := 1 << d
	b := graph.NewBuilder((d + 1) * rows)
	for l := 0; l < d; l++ {
		for r := 0; r < rows; r++ {
			b.MustAddEdge(ButterflyNode(d, l, r), ButterflyNode(d, l+1, r))
			b.MustAddEdge(ButterflyNode(d, l, r), ButterflyNode(d, l+1, r^(1<<l)))
		}
	}
	return b.Build(), nil
}

// WrappedButterfly returns the wrapped butterfly: levels 0..d-1 (level d is
// identified with level 0), d·2^d vertices, 4-regular for d ≥ 3.
func WrappedButterfly(d int) (*graph.Graph, error) {
	if d < 2 || d > 24 {
		return nil, fmt.Errorf("topology: wrapped butterfly dimension %d out of range [2,24]", d)
	}
	rows := 1 << d
	node := func(l, r int) int { return (l%d)*rows + r }
	b := graph.NewBuilder(d * rows)
	for l := 0; l < d; l++ {
		for r := 0; r < rows; r++ {
			b.MustAddEdge(node(l, r), node(l+1, r))
			b.MustAddEdge(node(l, r), node(l+1, r^(1<<l)))
		}
	}
	return b.Build(), nil
}

// CubeConnectedCycles returns the CCC of dimension d: each hypercube node is
// replaced by a cycle of d vertices; vertex (v, i) connects to (v, i±1 mod d)
// and (v XOR 2^i, i). 3-regular for d ≥ 3; d·2^d vertices.
func CubeConnectedCycles(d int) (*graph.Graph, error) {
	if d < 3 || d > 24 {
		return nil, fmt.Errorf("topology: CCC dimension %d out of range [3,24]", d)
	}
	node := func(v, i int) int { return v*d + i }
	b := graph.NewBuilder(d * (1 << d))
	for v := 0; v < 1<<d; v++ {
		for i := 0; i < d; i++ {
			b.MustAddEdge(node(v, i), node(v, (i+1)%d))
			w := v ^ (1 << i)
			if v < w {
				b.MustAddEdge(node(v, i), node(w, i))
			}
		}
	}
	return b.Build(), nil
}

// ShuffleExchange returns the shuffle-exchange network on 2^d vertices:
// exchange edges {v, v XOR 1} and shuffle edges {v, rot(v)} where rot is a
// one-bit cyclic left rotation of the d-bit address. Degree ≤ 3.
func ShuffleExchange(d int) (*graph.Graph, error) {
	if d < 2 || d > 28 {
		return nil, fmt.Errorf("topology: shuffle-exchange dimension %d out of range [2,28]", d)
	}
	n := 1 << d
	rot := func(v int) int { return ((v << 1) | (v >> (d - 1))) & (n - 1) }
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if w := v ^ 1; v < w {
			b.MustAddEdge(v, w)
		}
		if w := rot(v); w != v {
			b.MustAddEdge(v, w)
		}
	}
	return b.Build(), nil
}

// DeBruijn returns the binary de Bruijn graph on 2^d vertices: v is adjacent
// to (2v mod n) and (2v+1 mod n). Degree ≤ 4 (self-loops dropped).
func DeBruijn(d int) (*graph.Graph, error) {
	if d < 2 || d > 28 {
		return nil, fmt.Errorf("topology: de Bruijn dimension %d out of range [2,28]", d)
	}
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, w := range []int{(2 * v) % n, (2*v + 1) % n} {
			if w != v {
				b.MustAddEdge(v, w)
			}
		}
	}
	return b.Build(), nil
}

// IsPowerOfTwo reports whether x is a positive power of two.
func IsPowerOfTwo(x int) bool { return x > 0 && x&(x-1) == 0 }

// Log2 returns floor(log2 x) for x ≥ 1.
func Log2(x int) int {
	if x < 1 {
		panic("topology: Log2 of non-positive value")
	}
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

// Log2Ceil returns ceil(log2 x) for x ≥ 1.
func Log2Ceil(x int) int {
	l := Log2(x)
	if 1<<l < x {
		l++
	}
	return l
}

// SideLength returns √n if n is a perfect square, else an error. Meshes and
// tori in the paper assume n = N².
func SideLength(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("topology: size %d not positive", n)
	}
	N := int(math.Round(math.Sqrt(float64(n))))
	for N*N > n {
		N--
	}
	for (N+1)*(N+1) <= n {
		N++
	}
	if N*N != n {
		return 0, fmt.Errorf("topology: size %d is not a perfect square", n)
	}
	return N, nil
}
